"""WalkLog: deterministic sampling, bounded heat maps, order-free merge."""

import pytest

from repro.obs.walklog import (
    DEFAULT_MAX_PAGES,
    DEFAULT_RESERVOIR,
    REGION_SHIFT,
    TOP_CAP,
    WalkLog,
    merge_walklogs,
)


def _record(vpn: int, cycles_fp: int = 1 << 52) -> dict:
    return {
        "vpn": vpn,
        "cycles": cycles_fp / (1 << 52),
        "cycles_fp": cycles_fp,
        "refs": 4,
        "raw_refs": 4,
        "checks": 0,
        "page_size": "4K",
        "case": "both",
        "levels": ("guest_L1", "host_L1"),
    }


def _fill(log: WalkLog, vpns: list[int]) -> None:
    for vpn in vpns:
        log.record(_record(vpn))


class TestReservoir:
    def test_same_seed_same_samples(self):
        vpns = [(i * 7919) % 5000 for i in range(2000)]
        a, b = WalkLog(seed=5, reservoir_size=32), WalkLog(seed=5, reservoir_size=32)
        _fill(a, vpns)
        _fill(b, vpns)
        assert a.snapshot() == b.snapshot()

    def test_different_seed_different_samples(self):
        vpns = [(i * 7919) % 5000 for i in range(2000)]
        a, b = WalkLog(seed=5, reservoir_size=32), WalkLog(seed=6, reservoir_size=32)
        _fill(a, vpns)
        _fill(b, vpns)
        assert a.snapshot()["reservoir"] != b.snapshot()["reservoir"]
        # ... but heat is sampling-independent.
        assert a.snapshot()["pages"] == b.snapshot()["pages"]

    def test_reservoir_bounded(self):
        log = WalkLog(reservoir_size=16)
        _fill(log, list(range(500)))
        assert len(log.reservoir) == 16
        assert log.walks_seen == 500

    def test_zero_reservoir_disables_sampling(self):
        log = WalkLog(reservoir_size=0)
        _fill(log, [1, 2, 3])
        assert log.reservoir == []
        assert log.walks_seen == 3

    def test_defaults(self):
        log = WalkLog()
        assert log.reservoir_size == DEFAULT_RESERVOIR
        assert log.max_pages == DEFAULT_MAX_PAGES

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WalkLog(reservoir_size=-1)
        with pytest.raises(ValueError):
            WalkLog(max_pages=0)


class TestHeat:
    def test_page_cap_counts_overflow(self):
        log = WalkLog(max_pages=4)
        _fill(log, [10, 11, 12, 13, 14, 15, 10])
        assert len(log.pages) == 4
        assert log.pages_dropped == 2  # vpns 14, 15 arrived past the cap
        assert log.pages[10][0] == 2  # tracked pages still accumulate

    def test_top_pages_ranked_by_cycles_with_deterministic_ties(self):
        log = WalkLog()
        log.record(_record(3, cycles_fp=100))
        log.record(_record(1, cycles_fp=300))
        log.record(_record(2, cycles_fp=100))
        assert log.top_pages() == [[1, 1, 300], [2, 1, 100], [3, 1, 100]]

    def test_regions_group_by_2m(self):
        log = WalkLog()
        _fill(log, [0, 1, (1 << REGION_SHIFT) - 1, 1 << REGION_SHIFT])
        assert log.regions == {0: 3, 1: 1}
        assert log.top_regions() == [[0, 3], [1, 1]]

    def test_snapshot_lists_are_capped(self):
        log = WalkLog(max_pages=TOP_CAP + 100)
        _fill(log, list(range(TOP_CAP + 50)))
        snapshot = log.snapshot()
        assert len(snapshot["pages"]) == TOP_CAP
        assert snapshot["pages_tracked"] == TOP_CAP + 50


class TestMerge:
    def test_merge_sums_then_cuts(self):
        a, b = WalkLog(seed=1), WalkLog(seed=2)
        _fill(a, [1, 2, 2])
        _fill(b, [2, 3])
        merged = merge_walklogs([a.snapshot(), b.snapshot()])
        assert merged["walks_seen"] == 5
        assert merged["pages"][0] == [2, 3, 3 << 52]  # page 2: 3 walks total
        assert merged["reservoir"] == []
        assert merged["reservoir_size"] == 0

    def test_merge_order_independent(self):
        a, b, c = WalkLog(seed=1), WalkLog(seed=2), WalkLog(seed=3)
        _fill(a, [(i * 31) % 400 for i in range(300)])
        _fill(b, [(i * 17) % 400 for i in range(300)])
        _fill(c, [(i * 13) % 400 for i in range(300)])
        snaps = [a.snapshot(), b.snapshot(), c.snapshot()]
        assert merge_walklogs(snaps) == merge_walklogs(snaps[::-1])

    def test_merge_empty(self):
        merged = merge_walklogs([])
        assert merged["walks_seen"] == 0
        assert merged["pages"] == []
