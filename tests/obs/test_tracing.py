"""RunObserver sampling, equivalence, and Chrome-trace rendering."""

import json

import pytest

from repro.obs.tracing import ObsOptions, RunObserver, chrome_trace
from repro.sim.simulator import simulate
from tests.conftest import TinyWorkload


def _observed_run(config="4K+4K", interval=500, length=3000, seed=1):
    observer = ObsOptions(interval=interval).make_observer()
    result = simulate(
        config,
        TinyWorkload(),
        trace_length=length,
        seed=seed,
        observer=observer,
    )
    assert result.obs is not None
    return result


class TestObsOptions:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ObsOptions(interval=0)
        with pytest.raises(ValueError):
            RunObserver(interval=-5)

    def test_none_interval_disables_sampling(self):
        observer = ObsOptions(interval=None).make_observer()
        result = simulate(
            "4K", TinyWorkload(), trace_length=2000, seed=0, observer=observer
        )
        assert result.obs is not None
        assert result.obs.samples == ()
        assert result.obs.metrics  # metrics still collected


class TestObservedRun:
    def test_observer_is_bit_identical_to_unobserved(self):
        observed = _observed_run()
        plain = simulate("4K+4K", TinyWorkload(), trace_length=3000, seed=1)
        assert observed.counters.__dict__ == plain.counters.__dict__
        assert observed.overhead_percent == plain.overhead_percent

    def test_samples_cover_measured_portion(self):
        result = _observed_run(interval=500, length=3000)
        samples = result.obs.samples
        # 3000 refs, 15% warm-up -> 2550 measured -> ceil(2550/500) = 6.
        assert len(samples) == 6
        assert samples[-1].ref_index == 2550
        assert [s.ref_index for s in samples] == sorted(
            s.ref_index for s in samples
        )
        # Cumulative counters never decrease.
        for a, b in zip(samples, samples[1:]):
            assert b.accesses >= a.accesses
            assert b.walks >= a.walks
        assert samples[-1].accesses == result.counters.accesses

    def test_record_carries_provenance(self):
        result = _observed_run(config="DD", seed=9)
        obs = result.obs
        assert obs.workload == "tiny"
        assert obs.config == "DD"
        assert obs.seed == 9
        assert obs.trace_length == 3000
        assert obs.duration_us >= 1
        assert obs.summary["walks"] == result.counters.walks
        assert "tlb" in obs.summary

    def test_walk_histogram_matches_counters(self):
        result = _observed_run(config="4K+4K")
        hist = result.obs.metrics.get("mmu.walk_latency_cycles")
        assert hist is not None
        assert hist["count"] == result.counters.walks
        assert hist["sum"] == pytest.approx(result.counters.walk_cycles)


class TestChromeTrace:
    def test_empty_records(self):
        doc = chrome_trace([], "x")
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_spans_counters_and_json_validity(self):
        records = [
            _observed_run(config=c, seed=2).obs for c in ("4K", "4K+4K")
        ]
        doc = chrome_trace(records, "unit")
        text = json.dumps(doc)
        assert json.loads(text) == doc  # valid JSON round-trip
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases  # process metadata
        assert "X" in phases  # cell spans
        assert "C" in phases  # counter tracks
        spans = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"tiny/4K", "tiny/4K+4K"}
        # Timeline is normalized: earliest span starts at ts 0.
        assert min(s["ts"] for s in spans) == 0
        for e in events:
            assert e["ts"] >= 0 if "ts" in e else True
