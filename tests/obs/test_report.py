"""Report renderers: text, folded stacks and HTML from one real profile."""

import re

import numpy as np
import pytest

from repro.obs.profiler import WalkProfiler, from_fixed
from repro.obs.report import render_folded, render_html, render_text
from repro.sim.config import parse_config
from repro.sim.engine import access_batch
from repro.sim.system import build_system, populate_for_addresses
from tests.conftest import TinyWorkload


@pytest.fixture(scope="module")
def profile() -> dict:
    workload = TinyWorkload()
    system = build_system(parse_config("4K+4K"), workload.spec)
    trace = workload.trace(1500, seed=4)
    rebased = (trace.astype(np.int64) << 12) + system.base_va
    populate_for_addresses(system, np.unique(rebased))
    profiler = WalkProfiler(seed=0)
    profiler.attach(system)
    access_batch(system.mmu, rebased)
    return profiler.finalize(system)


class TestText:
    def test_contains_attribution_and_heat(self, profile):
        text = render_text(profile)
        assert "cycle attribution by (structure, level, cause)" in text
        assert "guest" in text and "host" in text
        assert "hot pages" in text
        assert "hot 2M regions" in text
        assert f"{profile['walks']:,}" in text

    def test_per_page_shows_reservoir(self, profile):
        brief = render_text(profile, per_page=False)
        full = render_text(profile, top=50, per_page=True)
        assert "sampled walk records" not in brief
        assert "sampled walk records" in full

    def test_merged_profile_without_walklog_renders(self, profile):
        stripped = {k: v for k, v in profile.items() if k != "walklog"}
        text = render_text(stripped)
        assert "hot pages" not in text
        assert "cycle attribution" in text


class TestFolded:
    def test_lines_parse_as_stack_and_integer(self, profile):
        folded = render_folded(profile)
        lines = folded.splitlines()
        assert lines, "a profiled run must produce folded stacks"
        for line in lines:
            assert re.fullmatch(r"[\w;.-]+ \d+", line), line
            path, _ = line.rsplit(" ", 1)
            assert path.split(";")[0] == "walk"

    def test_weights_match_books(self, profile):
        folded = render_folded(profile)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in folded.splitlines())
        expected = from_fixed(profile["total_cycles_fp"])
        assert total == pytest.approx(expected, rel=0.01)

    def test_empty_profile(self):
        assert render_folded({"folded": {}}) == ""


class TestHtml:
    def test_self_contained_document(self, profile):
        html_text = render_html(profile, title="tiny under 4K+4K")
        assert html_text.startswith("<!DOCTYPE html>")
        assert html_text.endswith("</html>")
        assert "tiny under 4K+4K" in html_text
        assert "<script" not in html_text  # no external/embedded JS needed
        assert "http" not in html_text.split("</style>")[0]  # CSS is inline

    def test_escapes_title(self, profile):
        html_text = render_html(profile, title="<b>&evil</b>")
        assert "<b>&evil</b>" not in html_text
        assert "&lt;b&gt;&amp;evil&lt;/b&gt;" in html_text
