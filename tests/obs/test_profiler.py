"""The walk profiler's contract: exact conservation, zero interference.

Two invariants make the profiler trustworthy:

* **conservation** -- per-axis attributed cycles sum *exactly* (integer
  equality at 2**52 fixed point) to the MMU's float-accumulated total
  modelled translation cycles, on both the scalar and batched engines,
  for every configuration the experiments use;
* **neutrality** -- attaching the profiler leaves every simulation
  counter bit-identical to an unprofiled run.
"""

import numpy as np
import pytest

from repro.obs.profiler import (
    SCALE,
    WalkProfiler,
    merge_profiles,
    strip_reservoir,
    to_fixed,
)
from repro.obs.tracing import ObsOptions
from repro.sim.config import parse_config
from repro.sim.engine import access_batch
from repro.sim.simulator import simulate
from repro.sim.system import build_system, populate_for_addresses
from tests.conftest import TinyWorkload
from tests.sim.test_engine_equivalence import ALL_CONFIG_LABELS

TRACE_LENGTH = 2000


def _profiled_run(label: str, engine: str, seed: int = 7):
    """One populated system driven through one engine with a profiler."""
    workload = TinyWorkload()
    system = build_system(parse_config(label), workload.spec)
    trace = workload.trace(TRACE_LENGTH, seed=seed)
    rebased = (trace.astype(np.int64) << 12) + system.base_va
    populate_for_addresses(system, np.unique(rebased))
    profiler = WalkProfiler(seed=0)
    profiler.attach(system)
    if engine == "scalar":
        access = system.mmu.access
        for va in map(int, rebased):
            access(va)
    else:
        access_batch(system.mmu, rebased)
    return system, profiler.finalize(system)


@pytest.mark.parametrize("engine", ["scalar", "batched"])
@pytest.mark.parametrize("label", ALL_CONFIG_LABELS)
def test_conservation_exact(label, engine):
    """Attributed cycles == modelled cycles, to the last fixed-point bit."""
    system, snapshot = _profiled_run(label, engine)
    expected = to_fixed(system.mmu.counters.translation_cycles)
    assert snapshot["total_cycles_fp"] == expected
    assert snapshot["total_cycles_fp"] == sum(
        axis["cycles_fp"] for axis in snapshot["axes"].values()
    )
    # Folded stacks carry the same cycles as the axes (zero-cycle
    # events are axis-only by design).
    assert sum(snapshot["folded"].values()) == expected


@pytest.mark.parametrize("label", ["4K", "4K+4K", "DS", "THP+VD"])
def test_profiles_engine_invariant(label):
    """Scalar and batched runs produce byte-identical profiles."""
    _, scalar_snapshot = _profiled_run(label, "scalar")
    _, batched_snapshot = _profiled_run(label, "batched")
    assert scalar_snapshot == batched_snapshot


def test_nothing_unattributed():
    """A correctly hooked walker never leaks cycles to the fallback axis."""
    for label in ("4K", "4K+4K", "DS", "DD"):
        _, snapshot = _profiled_run(label, "batched")
        assert "walk|-|unattributed" not in snapshot["axes"], label


def test_profiling_leaves_counters_bit_identical(tiny_workload):
    """The --profile acceptance criterion: observe without perturbing."""
    plain = simulate("4K+4K", tiny_workload, trace_length=3000, seed=3)
    observer = ObsOptions(interval=None, profile=True).make_observer()
    profiled = simulate(
        "4K+4K", tiny_workload, trace_length=3000, seed=3, observer=observer
    )
    assert profiled.counters == plain.counters
    assert profiled.run == plain.run
    assert profiled.overhead == plain.overhead
    assert profiled.profile is not None
    assert profiled.profile["total_cycles_fp"] == to_fixed(
        plain.counters.translation_cycles
    )


def test_faulted_runs_conserve(tiny_workload):
    """Faulted walk attempts' charges are discarded, not double-counted,
    and degradation reactions conserve in their own books."""
    from repro.faults.injector import FaultInjector

    injector = FaultInjector.chaos_plan(3000, seed=1)
    observer = ObsOptions(interval=None, profile=True).make_observer()
    result = simulate(
        "DD",
        tiny_workload,
        trace_length=3000,
        seed=3,
        fault_injector=injector,
        observer=observer,
    )
    profile = result.profile
    assert profile["total_cycles_fp"] == to_fixed(
        result.counters.translation_cycles
    )
    log = result.degradation_log
    assert log is not None and log.events
    assert profile["degradation_cycles_fp"] == to_fixed(log.total_cycle_cost)
    assert sum(d["count"] for d in profile["degradation"].values()) == len(
        log.events
    )


def test_degradation_books_conserve():
    """Degradation books mirror the log's builtin-sum accumulation."""
    profiler = WalkProfiler(walklog=False)
    costs = [1234.5, 0.1, 999999.25, 1 / 3, 42.42]
    for index, cost in enumerate(costs):
        profiler.degradation_event(f"action{index % 2}", cost)
    total = 0.0
    for cost in costs:  # the same left-fold float sum DegradationLog uses
        total += cost
    assert sum(profiler.degradation_cycles.values()) == to_fixed(total)
    assert sum(profiler.degradation_counts.values()) == len(costs)


def test_to_fixed_exact_for_modelled_costs():
    """to_fixed round-trips every cost magnitude the simulator charges."""
    from fractions import Fraction

    for value in (0.0, 1.0, 7.0, 12.56, 27.0, 79.6, 545.6, 1e6 + 0.25):
        assert Fraction(to_fixed(value), SCALE) == Fraction(value)
    # Sanity: the scale really is 2**52.
    assert SCALE == 1 << 52


def test_merge_profiles_order_independent():
    """Any permutation of inputs produces the same merged snapshot."""
    _, a = _profiled_run("4K+4K", "batched", seed=7)
    _, b = _profiled_run("DS", "batched", seed=8)
    _, c = _profiled_run("4K", "scalar", seed=9)
    snapshots = [strip_reservoir(s) for s in (a, b, c)]
    merged = merge_profiles(snapshots)
    assert merged == merge_profiles(snapshots[::-1])
    assert merged["walks"] == sum(s["walks"] for s in snapshots)
    assert merged["total_cycles_fp"] == sum(
        s["total_cycles_fp"] for s in snapshots
    )


def test_merge_profiles_rejects_scale_mismatch():
    _, a = _profiled_run("4K", "batched")
    bad = dict(a, scale=1 << 32)
    with pytest.raises(ValueError, match="scale mismatch"):
        merge_profiles([a, bad])


def test_strip_reservoir_keeps_books():
    _, snapshot = _profiled_run("4K+4K", "batched")
    stripped = strip_reservoir(snapshot)
    assert stripped["walklog"]["reservoir"] == []
    assert snapshot["walklog"]["reservoir"], "original must keep its samples"
    assert stripped["axes"] == snapshot["axes"]
    assert stripped["total_cycles_fp"] == snapshot["total_cycles_fp"]
