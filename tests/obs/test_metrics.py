"""Unit tests for repro.obs.metrics primitives and merging."""

import pytest

from repro.obs.metrics import (
    BUCKET_FAMILIES,
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    buckets_for,
    merge_snapshots,
)


class TestBuckets:
    def test_known_family_prefix_match(self):
        assert buckets_for("mmu.walk_latency_cycles") == BUCKET_FAMILIES[
            "mmu.walk_latency_cycles"
        ]

    def test_longest_prefix_wins(self):
        assert buckets_for("mmu.walk_refs") == BUCKET_FAMILIES["mmu.walk_refs"]

    def test_unknown_name_gets_default(self):
        assert buckets_for("something.new") == DEFAULT_BUCKETS


class TestHistogram:
    def test_observation_lands_in_first_bound_at_or_above(self):
        h = Histogram(bounds=(10, 20, 30))
        h.observe(10)  # inclusive upper bound
        h.observe(15)
        h.observe(31)  # overflow bucket
        assert h.counts == [1, 1, 0, 1]
        assert h.count == 3
        assert h.total == 56

    def test_mean_empty_is_zero(self):
        assert Histogram(bounds=(1,)).mean == 0.0


class TestRegistry:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.inc("c")
        m.inc("c", 4)
        m.set_gauge("g", 7)
        m.set_gauge("g", 3)
        m.observe("h", 50)
        assert m.counter_value("c") == 5
        assert m.gauge_value("g") == 3
        assert m.histogram("h").count == 1
        assert m.names() == ["c", "g", "h"]

    def test_disabled_registry_drops_everything(self):
        m = MetricsRegistry(enabled=False)
        m.inc("c")
        m.set_gauge("g", 1)
        m.observe("h", 1)
        assert m.snapshot() == {}

    def test_snapshot_is_sorted_and_plain(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        snap = m.snapshot()
        assert list(snap) == ["a", "z"]
        assert snap["a"] == {"type": "counter", "value": 1}

    def test_gauge_tracks_extremes(self):
        m = MetricsRegistry()
        for v in (5, 1, 9):
            m.set_gauge("g", v)
        snap = m.snapshot()["g"]
        assert (snap["value"], snap["min"], snap["max"]) == (9, 1, 9)


class TestMergeSnapshots:
    def _snap(self):
        m = MetricsRegistry()
        m.inc("walks", 3)
        m.set_gauge("pages", 7)
        m.observe("mmu.walk_refs", 4)
        return m.snapshot()

    def test_counters_sum_and_histograms_add_bucketwise(self):
        merged = merge_snapshots([self._snap(), self._snap()])
        assert merged["walks"]["value"] == 6
        assert merged["mmu.walk_refs"]["count"] == 2
        assert sum(merged["mmu.walk_refs"]["counts"]) == 2

    def test_merge_is_sorted_and_order_independent_for_counters(self):
        a, b = self._snap(), self._snap()
        b["walks"]["value"] = 10
        ab = merge_snapshots([a, b])
        ba = merge_snapshots([b, a])
        assert ab["walks"]["value"] == ba["walks"]["value"] == 13
        assert list(ab) == sorted(ab)

    def test_bounds_mismatch_raises(self):
        a = self._snap()
        b = self._snap()
        b["mmu.walk_refs"]["bounds"] = [1, 2]
        b["mmu.walk_refs"]["counts"] = [0, 1, 0]
        with pytest.raises(ValueError, match="bounds"):
            merge_snapshots([a, b])

    def test_kind_mismatch_raises(self):
        a = self._snap()
        b = {"walks": {"type": "gauge", "value": 1}}
        with pytest.raises(ValueError, match="kind"):
            merge_snapshots([a, b])

    def test_empty_merge(self):
        assert merge_snapshots([]) == {}
