"""Unit tests for repro.obs.metrics primitives and merging."""

import pytest

from repro.obs.metrics import (
    BUCKET_FAMILIES,
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    buckets_for,
    merge_snapshots,
)


class TestBuckets:
    def test_known_family_prefix_match(self):
        assert buckets_for("mmu.walk_latency_cycles") == BUCKET_FAMILIES[
            "mmu.walk_latency_cycles"
        ]

    def test_longest_prefix_wins(self):
        assert buckets_for("mmu.walk_refs") == BUCKET_FAMILIES["mmu.walk_refs"]

    def test_unknown_name_gets_default(self):
        assert buckets_for("something.new") == DEFAULT_BUCKETS


class TestHistogram:
    def test_observation_lands_in_first_bound_at_or_above(self):
        h = Histogram(bounds=(10, 20, 30))
        h.observe(10)  # inclusive upper bound
        h.observe(15)
        h.observe(31)  # overflow bucket
        assert h.counts == [1, 1, 0, 1]
        assert h.count == 3
        assert h.total == 56

    def test_mean_empty_is_zero(self):
        assert Histogram(bounds=(1,)).mean == 0.0


class TestQuantiles:
    def test_empty_histogram_reports_zero(self):
        h = Histogram(bounds=(10, 20))
        assert h.quantile(0.5) == 0.0
        assert h.as_dict()["p99"] == 0.0

    def test_interpolates_within_bucket(self):
        h = Histogram(bounds=(0, 10, 20))
        for value in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):  # all in (0, 10]
            h.observe(value)
        # The median observation is halfway through the (0, 10] bucket.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram(bounds=(10, 20))
        h.observe(5)
        h.observe(1000)  # overflow: exact value is gone
        assert h.quantile(0.99) == 20.0

    def test_first_bucket_lower_edge_is_zero_or_negative_bound(self):
        h = Histogram(bounds=(10, 20))
        h.observe(4)
        assert 0.0 <= h.quantile(0.5) <= 10.0
        negative = Histogram(bounds=(-10, 0))
        negative.observe(-5)
        assert -10.0 <= negative.quantile(0.5) <= 0.0

    def test_rejects_out_of_range_q(self):
        h = Histogram(bounds=(10,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_as_dict_carries_summary_stats(self):
        h = Histogram(bounds=(10, 20, 30))
        for value in (5, 15, 25, 25):
            h.observe(value)
        snap = h.as_dict()
        assert snap["mean"] == pytest.approx(17.5)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        monotone = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert monotone == sorted(monotone)


class TestRegistry:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.inc("c")
        m.inc("c", 4)
        m.set_gauge("g", 7)
        m.set_gauge("g", 3)
        m.observe("h", 50)
        assert m.counter_value("c") == 5
        assert m.gauge_value("g") == 3
        assert m.histogram("h").count == 1
        assert m.names() == ["c", "g", "h"]

    def test_disabled_registry_drops_everything(self):
        m = MetricsRegistry(enabled=False)
        m.inc("c")
        m.set_gauge("g", 1)
        m.observe("h", 1)
        assert m.snapshot() == {}

    def test_snapshot_is_sorted_and_plain(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        snap = m.snapshot()
        assert list(snap) == ["a", "z"]
        assert snap["a"] == {"type": "counter", "value": 1}

    def test_gauge_tracks_extremes(self):
        m = MetricsRegistry()
        for v in (5, 1, 9):
            m.set_gauge("g", v)
        snap = m.snapshot()["g"]
        assert (snap["value"], snap["min"], snap["max"]) == (9, 1, 9)


class TestMergeSnapshots:
    def _snap(self):
        m = MetricsRegistry()
        m.inc("walks", 3)
        m.set_gauge("pages", 7)
        m.observe("mmu.walk_refs", 4)
        return m.snapshot()

    def test_counters_sum_and_histograms_add_bucketwise(self):
        merged = merge_snapshots([self._snap(), self._snap()])
        assert merged["walks"]["value"] == 6
        assert merged["mmu.walk_refs"]["count"] == 2
        assert sum(merged["mmu.walk_refs"]["counts"]) == 2

    def test_merge_is_sorted_and_order_independent_for_counters(self):
        a, b = self._snap(), self._snap()
        b["walks"]["value"] = 10
        ab = merge_snapshots([a, b])
        ba = merge_snapshots([b, a])
        assert ab["walks"]["value"] == ba["walks"]["value"] == 13
        assert list(ab) == sorted(ab)

    def test_bounds_mismatch_raises(self):
        a = self._snap()
        b = self._snap()
        b["mmu.walk_refs"]["bounds"] = [1, 2]
        b["mmu.walk_refs"]["counts"] = [0, 1, 0]
        with pytest.raises(ValueError, match="bounds"):
            merge_snapshots([a, b])

    def test_kind_mismatch_raises(self):
        a = self._snap()
        b = {"walks": {"type": "gauge", "value": 1}}
        with pytest.raises(ValueError, match="kind"):
            merge_snapshots([a, b])

    def test_counter_histogram_collision_names_the_metric(self):
        a = self._snap()
        b = {"walks": {"type": "histogram", "bounds": [1], "counts": [0, 1],
                       "sum": 2.0, "count": 1}}
        with pytest.raises(ValueError, match="'walks'.*kind mismatch"):
            merge_snapshots([a, b])

    def test_gauge_counter_collision_raises_either_order(self):
        gauge = {"m": {"type": "gauge", "value": 1}}
        counter = {"m": {"type": "counter", "value": 1}}
        with pytest.raises(ValueError, match="kind mismatch"):
            merge_snapshots([gauge, counter])
        with pytest.raises(ValueError, match="kind mismatch"):
            merge_snapshots([counter, gauge])

    def test_unknown_kind_raises(self):
        a = {"m": {"type": "exotic", "value": 1}}
        with pytest.raises(ValueError, match="unknown kind"):
            merge_snapshots([a, a])

    def test_merged_quantiles_recomputed_from_merged_buckets(self):
        low = MetricsRegistry()
        high = MetricsRegistry()
        for value in (1, 2, 3):
            low.observe("mmu.walk_latency_cycles", value)
        for value in (600, 650, 700):
            high.observe("mmu.walk_latency_cycles", value)
        merged = merge_snapshots([low.snapshot(), high.snapshot()])
        data = merged["mmu.walk_latency_cycles"]
        # Neither input's p50 (both mid-bucket extremes) survives; the
        # merged median sits between the two clusters.
        assert data["count"] == 6
        assert 3 < data["p50"] < 600
        assert data["mean"] == pytest.approx((1 + 2 + 3 + 600 + 650 + 700) / 6)
        assert data["p50"] <= data["p95"] <= data["p99"]

    def test_empty_merge(self):
        assert merge_snapshots([]) == {}
