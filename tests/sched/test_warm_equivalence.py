"""Warm == cold: store-served sweeps are byte-identical to computed ones.

The store's correctness contract (STORAGE.md): a warm sweep -- every
cell served from disk -- must produce *byte-identical* experiment
reports to the cold sweep that populated it, serially and with a worker
pool, for every store-aware experiment.  These tests run each
experiment's smallest meaningful grid cold into a fresh store, re-run
it warm, and compare serialized reports; a final test proves that
changing key material (the code fingerprint) turns the same sweep into
a full miss instead of serving stale entries.

``TestFabric`` extends the contract to the distributed case: the same
experiment dispatched through a fabric coordinator to two lease-driven
workers must produce byte-identical reports to the serial run, cold
*and* warm (DESIGN.md, "Distributed sweep fabric").
"""

import threading

import pytest

from repro.experiments import figure01, figure13, report, resilience
from repro.obs.tracing import ObsOptions
from repro.sched import Sweep
from repro.store.store import ResultStore

SMOKE_LENGTH = 2_000


def _sweep(tmp_path, experiment, resume=False):
    return Sweep(experiment, ResultStore(tmp_path / "store"), resume=resume)


def _cold_then_warm(tmp_path, experiment, run, jobs=1):
    """Run cold into a fresh store, then warm; return both results."""
    cold_sweep = _sweep(tmp_path, experiment)
    cold = run(cold_sweep, 1)
    assert cold_sweep.report.hits == 0
    assert cold_sweep.report.computed == cold_sweep.report.total > 0

    warm_sweep = _sweep(tmp_path, experiment)
    warm = run(warm_sweep, jobs)
    assert warm_sweep.report.all_hits
    assert warm_sweep.report.computed == 0
    return cold, warm


class TestFigure01:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_warm_equals_cold(self, tmp_path, jobs):
        cold, warm = _cold_then_warm(
            tmp_path,
            "figure1",
            lambda sweep, j: figure01.run(
                trace_length=SMOKE_LENGTH,
                workloads=("gups",),
                jobs=j,
                sweep=sweep,
            ),
            jobs=jobs,
        )
        assert report.dumps(warm) == report.dumps(cold)

    def test_storeless_run_is_identical_too(self, tmp_path):
        """The sweep machinery must not perturb results at all."""
        plain = figure01.run(trace_length=SMOKE_LENGTH, workloads=("gups",))
        stored = figure01.run(
            trace_length=SMOKE_LENGTH,
            workloads=("gups",),
            sweep=_sweep(tmp_path, "figure1"),
        )
        assert report.dumps(stored) == report.dumps(plain)


class TestFigure13:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_warm_equals_cold(self, tmp_path, jobs):
        cold, warm = _cold_then_warm(
            tmp_path,
            "figure13",
            lambda sweep, j: figure13.run(
                trace_length=SMOKE_LENGTH,
                workloads=("gups",),
                bad_counts=(1, 2),
                trials=2,
                jobs=j,
                sweep=sweep,
            ),
            jobs=jobs,
        )
        assert report.dumps(warm) == report.dumps(cold)

    def test_baseline_is_shared_across_trials(self, tmp_path):
        """One baseline cell serves every faulted trial (DAG dedup)."""
        sweep = _sweep(tmp_path, "figure13")
        figure13.run(
            trace_length=SMOKE_LENGTH,
            workloads=("gups",),
            bad_counts=(1, 2),
            trials=2,
            sweep=sweep,
        )
        # 1 baseline + 2 bad-counts x 2 trials = 5 cells, not 6.
        assert sweep.report.total == 5


class TestResilience:
    def test_warm_equals_cold(self, tmp_path):
        cold, warm = _cold_then_warm(
            tmp_path,
            "resilience",
            lambda sweep, j: resilience.run(
                trace_length=SMOKE_LENGTH,
                workloads=("gups",),
                extra_fault_counts=(0, 2),
                sweep=sweep,
            ),
        )
        assert report.dumps(warm) == report.dumps(cold)
        assert warm.all_consistent

    def test_observed_and_unobserved_cells_do_not_share(self, tmp_path):
        """obs is key material: an observed sweep must miss a store
        populated by an unobserved one (the results differ)."""
        store = ResultStore(tmp_path / "store")
        resilience.run(
            trace_length=SMOKE_LENGTH,
            workloads=("gups",),
            extra_fault_counts=(0,),
            sweep=Sweep("resilience", store),
        )
        observed = Sweep("resilience", store)
        result = resilience.run(
            trace_length=SMOKE_LENGTH,
            workloads=("gups",),
            extra_fault_counts=(0,),
            obs=ObsOptions(interval=500),
            sweep=observed,
        )
        # The unobserved baseline cell hits; the observed faulted cell
        # must not be served the unobserved entry.
        assert observed.report.hits == 1
        assert observed.report.computed == 1
        assert result.obs_records, "observed run must carry obs records"


class TestFabric:
    """Distributed sweeps are byte-identical to serial ones."""

    def _run_figure01(self, sweep):
        return figure01.run(
            trace_length=SMOKE_LENGTH, workloads=("gups",), sweep=sweep
        )

    def test_fabric_cold_and_warm_equal_serial(self, tmp_path):
        from repro.fabric import (
            CoordinatorThread,
            FabricCoordinator,
            FabricWorker,
        )

        serial = self._run_figure01(_sweep(tmp_path / "serial", "figure1"))

        store = ResultStore(tmp_path / "fabric" / "store")
        thread = CoordinatorThread(
            FabricCoordinator(store=store, lease_timeout=10.0,
                              poll_interval=0.02)
        ).start()
        workers = []
        try:
            for _ in range(2):
                worker = FabricWorker(f"127.0.0.1:{thread.port}", store)
                runner = threading.Thread(target=worker.run, daemon=True)
                runner.start()
                workers.append(worker)
            cold_sweep = Sweep(
                "figure1", store, fabric=f"127.0.0.1:{thread.port}"
            )
            cold = self._run_figure01(cold_sweep)
            assert cold_sweep.report.hits == 0
            assert cold_sweep.report.computed == cold_sweep.report.total > 0
            assert cold_sweep.fabric_events

            # Warm through the fabric too: all hits, no worker leases.
            warm_sweep = Sweep(
                "figure1", store, fabric=f"127.0.0.1:{thread.port}"
            )
            warm = self._run_figure01(warm_sweep)
            assert warm_sweep.report.all_hits
        finally:
            thread.stop()
        assert report.dumps(cold) == report.dumps(serial)
        assert report.dumps(warm) == report.dumps(serial)


class TestInvalidation:
    def test_code_fingerprint_change_turns_hits_into_misses(
        self, tmp_path, monkeypatch
    ):
        from repro.store import keys

        run = lambda sweep: figure01.run(  # noqa: E731
            trace_length=SMOKE_LENGTH, workloads=("gups",), sweep=sweep
        )
        cold_sweep = _sweep(tmp_path, "figure1")
        run(cold_sweep)
        assert cold_sweep.report.computed == cold_sweep.report.total

        monkeypatch.setattr(keys, "code_fingerprint", lambda: "0" * 40)
        invalidated = _sweep(tmp_path, "figure1")
        run(invalidated)
        assert invalidated.report.hits == 0
        assert invalidated.report.computed == invalidated.report.total
