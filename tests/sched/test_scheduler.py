"""Scheduler mechanics: DAG layering, dispatch, journals, resume.

These tests drive :class:`SweepScheduler`/:class:`Sweep` with tiny
synthetic cells (module-level executors over plain tuples) so the
scheduling contract is provable without running the simulator; the
experiment-level behaviour is covered by test_warm_equivalence.py.
"""

import json

import pytest

from repro.errors import SchedulerError
from repro.sched import Cell, Sweep, SweepScheduler, toposort_waves
from repro.store.store import ResultStore


def _cell(key_char, deps=(), task=None, execute=None):
    key = key_char * 40
    return Cell(
        key=key,
        ingredients={"kind": "synthetic", "id": key_char},
        task=task if task is not None else key_char,
        execute=execute if execute is not None else _double,
        deps=tuple(d * 40 for d in deps),
        label=f"cell-{key_char}",
    )


def _double(task):
    return task * 2


def _crash_on_c(task):
    if task == "c":
        raise RuntimeError("injected crash")
    return task * 2


class TestToposort:
    def test_independent_cells_form_one_wave(self):
        waves = toposort_waves([_cell("a"), _cell("b"), _cell("c")])
        assert [[c.key[0] for c in w] for w in waves] == [["a", "b", "c"]]

    def test_dependencies_layer_into_waves(self):
        waves = toposort_waves(
            [_cell("c", deps="b"), _cell("b", deps="a"), _cell("a")]
        )
        assert [[c.key[0] for c in w] for w in waves] == [["a"], ["b"], ["c"]]

    def test_duplicate_keys_with_identical_tasks_dedup(self):
        waves = toposort_waves([_cell("a"), _cell("a")])
        assert sum(len(w) for w in waves) == 1

    def test_duplicate_keys_with_different_tasks_collide(self):
        with pytest.raises(SchedulerError, match="collision"):
            toposort_waves([_cell("a", task="x"), _cell("a", task="y")])

    def test_unknown_dependency_is_rejected(self):
        with pytest.raises(SchedulerError, match="unknown"):
            toposort_waves([_cell("a", deps="z")])

    def test_cycle_is_rejected(self):
        with pytest.raises(SchedulerError, match="cycle"):
            toposort_waves([_cell("a", deps="b"), _cell("b", deps="a")])


class TestSchedulerRun:
    def test_cold_run_computes_and_persists_everything(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sched = SweepScheduler("synthetic", store)
        cells = [_cell("a"), _cell("b", deps="a")]
        results = sched.run(cells)
        assert results == {"a" * 40: "aa", "b" * 40: "bb"}
        assert sched.report.computed == 2
        assert sched.report.hits == 0
        assert store.get("a" * 40) == "aa"

    def test_warm_run_hits_everything(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        cells = [_cell("a"), _cell("b", deps="a")]
        SweepScheduler("synthetic", store).run(cells)

        def _never(task):  # noqa: ARG001 - executor must not be reached
            raise AssertionError("warm run must not execute cells")

        warm_cells = [
            _cell("a", execute=_never), _cell("b", deps="a", execute=_never)
        ]
        sched = SweepScheduler("synthetic", store)
        results = sched.run(warm_cells)
        assert sched.report.all_hits
        assert sched.report.computed == 0
        assert results["a" * 40] == "aa"

    def test_none_result_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sched = SweepScheduler("synthetic", store)
        with pytest.raises(SchedulerError, match="None"):
            sched.run([_cell("a", execute=_return_none)])

    def test_crash_mid_sweep_keeps_completed_cells_durable(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        cells = [
            _cell("a", execute=_crash_on_c),
            _cell("b", execute=_crash_on_c),
            _cell("c", execute=_crash_on_c),
        ]
        with pytest.raises(RuntimeError, match="injected"):
            SweepScheduler("synthetic", store).run(cells)
        # a and b landed before the crash; c did not.
        assert store.get("a" * 40) == "aa"
        assert store.get("b" * 40) == "bb"
        assert store.get("c" * 40) is None

        resumed = SweepScheduler("synthetic", ResultStore(tmp_path / "st"),
                                 resume=True)
        results = resumed.run([_cell("a"), _cell("b"), _cell("c")])
        assert results["c" * 40] == "cc"
        assert resumed.report.hits == 2
        assert resumed.report.computed == 1
        assert resumed.report.resumed == 2

    def test_parallel_run_matches_serial(self, tmp_path):
        serial_store = ResultStore(tmp_path / "s1")
        parallel_store = ResultStore(tmp_path / "s2")
        cells = [_cell(ch) for ch in "abcd"]
        serial = SweepScheduler("synthetic", serial_store).run(cells, jobs=1)
        par = SweepScheduler("synthetic", parallel_store).run(cells, jobs=2)
        assert serial == par


def _return_none(task):  # noqa: ARG001
    return None


class TestSweepJournal:
    def test_journal_records_sweep_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sched = SweepScheduler("synthetic", store)
        sched.run([_cell("a"), _cell("b")])
        (journal,) = store.sweeps_dir.glob("synthetic-*.jsonl")
        ops = [
            json.loads(line)["op"]
            for line in journal.read_text().splitlines()
        ]
        assert ops[0] == "sweep-begin"
        assert ops.count("cell-done") == 2
        assert ops[-1] == "sweep-done"

    def test_resume_ignores_completed_sweeps(self, tmp_path):
        """A finished journal is not 'resumed'; it is restarted."""
        store = ResultStore(tmp_path / "st")
        SweepScheduler("synthetic", store).run([_cell("a")])
        sched = SweepScheduler("synthetic", store, resume=True)
        sched.run([_cell("a")])
        assert sched.report.resumed == 0
        assert sched.report.hits == 1

    def test_deleting_the_journal_does_not_break_resume(self, tmp_path):
        """The store is the source of truth; the journal is advisory."""
        store = ResultStore(tmp_path / "st")
        SweepScheduler("synthetic", store).run([_cell("a"), _cell("b")])
        for journal in store.sweeps_dir.glob("*.jsonl"):
            journal.unlink()
        sched = SweepScheduler("synthetic", store, resume=True)
        sched.run([_cell("a"), _cell("b")])
        assert sched.report.all_hits


class TestSweepFrontDoor:
    def test_run_tasks_returns_results_in_task_order(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sweep = Sweep("synthetic", store)
        out = sweep.run_tasks(
            ["b", "a", "c"],
            _double,
            lambda t: {"kind": "synthetic", "id": t},
        )
        assert out == ["bb", "aa", "cc"]

    def test_duplicate_tasks_compute_once(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sweep = Sweep("synthetic", store)
        out = sweep.run_tasks(
            ["a", "a", "b"], _double, lambda t: {"id": t}
        )
        assert out == ["aa", "aa", "bb"]
        assert sweep.report.total == 2
        assert sweep.report.computed == 2

    def test_dep_outside_the_sweep_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sweep = Sweep("synthetic", store)
        with pytest.raises(SchedulerError, match="not part of this sweep"):
            sweep.run_tasks(
                ["a"],
                _double,
                lambda t: {"id": t},
                deps_for=lambda t: ["missing"],
            )

    def test_aggregate_report_sums_dispatches(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        sweep = Sweep("synthetic", store)
        sweep.run_tasks(["a"], _double, lambda t: {"id": t})
        sweep.run_tasks(["a", "b"], _double, lambda t: {"id": t})
        assert sweep.report.total == 3
        assert sweep.report.hits == 1
        assert sweep.report.computed == 2
