"""Shared test fixtures: a tiny, fast workload for system-level tests."""

import numpy as np
import pytest

from repro.core.address import MIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import Workload, WorkloadSpec, uniform_pages


class TinyWorkload(Workload):
    """A small synthetic workload so system tests build in milliseconds.

    64 MB footprint with a 60/40 hot/cold split: enough pages to
    exercise every TLB level without multi-second page-table
    population.
    """

    def __init__(self, footprint_bytes: int = 64 * MIB) -> None:
        self.spec = WorkloadSpec(
            name="tiny",
            description="test workload",
            category="big-memory",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=5.0,
            pt_updates_per_mref=10.0,
            content_profile=ContentProfile(zero_fraction=0.01, os_pages=64),
            refs_per_entry=2.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or 4000
        rng = np.random.default_rng(seed)
        hot = uniform_pages(length, 64, rng)
        cold = uniform_pages(length, self.spec.footprint_pages, rng)
        pick = rng.random(length) < 0.6
        out = np.where(pick, hot, cold)
        return out.astype(np.int64)


@pytest.fixture
def tiny_workload() -> TinyWorkload:
    return TinyWorkload()
