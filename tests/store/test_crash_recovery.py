"""Crash recovery: journal replay, quarantine, torn writes.

Every scenario hand-crafts the on-disk aftermath of a crash (a dangling
``begin`` record, a truncated object, a torn journal line) and asserts
the recovery contract from STORAGE.md: wrong results never come out --
every damage mode degrades to a miss, with corrupted files moved to
quarantine and reported by ``store verify``.
"""

import json

from repro.store import cli
from repro.store.store import ResultStore

KEY = "c" * 40


def _ingredients() -> dict:
    return {"kind": "test-cell", "workload": "gups", "seed": 0}


def _journal_begin(root, key=KEY):
    with open(root / "journal.jsonl", "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "begin", "key": key}) + "\n")


class TestJournalReplay:
    def test_dangling_begin_with_valid_object_is_completed(self, tmp_path):
        """Crash between rename and commit: the entry is durable."""
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        # Simulate the crash: journal says begin, never commit.
        (root / "journal.jsonl").write_text("")
        _journal_begin(root)

        reopened = ResultStore(root)
        assert reopened.recovery.completed == [KEY]
        assert reopened.recovery.quarantined == []
        assert reopened.get(KEY) == {"v": 1}

    def test_dangling_begin_with_truncated_object_is_quarantined(self, tmp_path):
        """Crash mid-write through a non-atomic path: quarantine, miss."""
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        path = store.object_path(KEY)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        (root / "journal.jsonl").write_text("")
        _journal_begin(root)

        reopened = ResultStore(root)
        assert reopened.recovery.quarantined == [KEY]
        assert not path.exists()
        assert list((root / "quarantine").glob(f"{KEY}.*.json"))
        assert reopened.get(KEY) is None

    def test_dangling_begin_with_no_object_is_cleared(self, tmp_path):
        """Crash before the staged file was renamed in: nothing landed."""
        root = tmp_path / "st"
        ResultStore(root)
        _journal_begin(root)

        reopened = ResultStore(root)
        assert reopened.recovery.cleared == [KEY]
        assert reopened.get(KEY) is None
        # The journal was compacted: a third open recovers nothing.
        assert ResultStore(root).recovery.actions == 0

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        """A partial last line (crash mid-append) must not break replay."""
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        with open(root / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"op": "begin", "key": "dddd')  # no newline, torn

        reopened = ResultStore(root)
        assert reopened.get(KEY) == {"v": 1}
        assert reopened.verify().clean


class TestReadPathQuarantine:
    def test_corrupt_payload_degrades_to_miss(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        path = store.object_path(KEY)
        envelope = json.loads(path.read_text())
        envelope["payload_sha256"] = "0" * 64
        path.write_text(json.dumps(envelope))

        assert store.get(KEY) is None
        assert store.stats.quarantined == 1
        assert not path.exists()
        reason = next((root / "quarantine").glob(f"{KEY}.*.reason"))
        assert "checksum" in reason.read_text()

    def test_unparsable_envelope_degrades_to_miss(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        store.object_path(KEY).write_text("not json {")
        assert store.get(KEY) is None
        assert store.stats.quarantined == 1

    def test_key_filename_mismatch_degrades_to_miss(self, tmp_path):
        """An entry renamed to the wrong key must not satisfy it."""
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        other = "d" * 40
        target = store.object_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        store.object_path(KEY).rename(target)
        assert store.get(other) is None
        assert store.stats.quarantined == 1


class TestVerifyReportsDamage:
    def test_verify_reports_corruption_without_mutating(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        path = store.object_path(KEY)
        envelope = json.loads(path.read_text())
        envelope["payload_sha256"] = "0" * 64
        path.write_text(json.dumps(envelope))

        report = store.verify()
        assert not report.clean
        assert [i.key for i in report.issues] == [KEY]
        assert "checksum" in report.issues[0].problem
        assert path.exists(), "verify is read-only; nothing quarantined"

    def test_verify_reports_dangling_journal_begin(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        _journal_begin(root)
        report = store.verify()
        assert not report.clean
        assert any("dangling" in i.problem for i in report.issues)

    def test_verify_counts_quarantined_files(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        store.object_path(KEY).write_text("garbage")
        assert store.get(KEY) is None  # quarantines
        report = store.verify()
        assert report.quarantined_files == 1
        assert not report.clean

    def test_cli_verify_exits_nonzero_on_damage(self, tmp_path, capsys):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        path = store.object_path(KEY)
        envelope = json.loads(path.read_text())
        envelope["payload_sha256"] = "0" * 64
        path.write_text(json.dumps(envelope))

        assert cli.main(["verify", "--store", str(root)]) == 1
        out = capsys.readouterr().out
        assert "PROBLEM" in out
        assert "PROBLEMS FOUND" in out

    def test_gc_quarantine_empties_the_directory(self, tmp_path):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY, {"v": 1}, _ingredients())
        store.object_path(KEY).write_text("garbage")
        store.get(KEY)
        assert store.verify().quarantined_files == 1
        store.gc(clear_quarantine=True)
        assert store.verify().clean
