"""Cell keying: determinism, sensitivity, fingerprint invalidation."""

import pytest

from repro.core.costs import CostModel
from repro.experiments.parallel import CellTask
from repro.obs.tracing import ObsOptions
from repro.store import keys
from repro.workloads.registry import create_workload


def _task(**overrides) -> CellTask:
    base = dict(workload="gups", config="4K", trace_length=2000, seed=0, obs=None)
    base.update(overrides)
    return CellTask(**base)


def _key(task: CellTask) -> str:
    return keys.cell_key(keys.grid_cell_ingredients(task))


class TestDigest:
    def test_deterministic(self):
        payload = {"b": 2, "a": [1, 2, 3]}
        assert keys.digest(payload) == keys.digest(payload)

    def test_key_order_insensitive(self):
        assert keys.digest({"a": 1, "b": 2}) == keys.digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert keys.digest({"a": 1}) != keys.digest({"a": 2})

    def test_length_and_alphabet(self):
        d = keys.digest({"x": 1})
        assert len(d) == keys.DIGEST_CHARS
        assert set(d) <= set("0123456789abcdef")


class TestCellKeySensitivity:
    def test_same_task_same_key(self):
        assert _key(_task()) == _key(_task())

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"trace_length": 4000},
            {"config": "DS"},
            {"workload": "graph500"},
            {"obs": ObsOptions(interval=1000)},
        ],
    )
    def test_any_ingredient_change_changes_the_key(self, change):
        assert _key(_task()) != _key(_task(**change))

    def test_config_keyed_on_parse_result(self):
        """Labels that parse identically share a key; that is by design."""
        assert keys.config_params("4K")["label"] == "4K"
        assert _key(_task(config="4K")) == _key(_task(config="4K"))

    def test_ingredients_carry_the_trace_key(self):
        ing = keys.grid_cell_ingredients(_task())
        assert ing["kind"] == "grid-cell"
        assert ing["trace_key"] == keys.trace_key_params(
            create_workload("gups"), 2000, 0
        )


class TestFingerprintInvalidation:
    def test_code_fingerprint_change_misses(self, monkeypatch):
        before = _key(_task())
        monkeypatch.setattr(keys, "code_fingerprint", lambda: "0" * 40)
        assert _key(_task()) != before

    def test_model_fingerprint_change_misses(self, monkeypatch):
        before = _key(_task())
        monkeypatch.setattr(keys, "model_fingerprint", lambda: "f" * 40)
        assert _key(_task()) != before

    def test_key_schema_bump_misses(self, monkeypatch):
        before = _key(_task())
        monkeypatch.setattr(keys, "KEY_SCHEMA", keys.KEY_SCHEMA + 1)
        assert _key(_task()) != before

    def test_code_fingerprint_excludes_the_persistence_layer(self, tmp_path):
        """Editing store/sched sources must not flush existing stores."""
        pkg = tmp_path / "pkg"
        (pkg / "store").mkdir(parents=True)
        (pkg / "sched").mkdir()
        (pkg / "sim.py").write_text("CONST = 1\n")
        (pkg / "store" / "store.py").write_text("A = 1\n")
        (pkg / "sched" / "scheduler.py").write_text("B = 1\n")
        before = keys.hash_tree(pkg, exclude=keys.CODE_FINGERPRINT_EXCLUDES)
        (pkg / "store" / "store.py").write_text("A = 2\n")
        (pkg / "sched" / "scheduler.py").write_text("B = 2\n")
        assert (
            keys.hash_tree(pkg, exclude=keys.CODE_FINGERPRINT_EXCLUDES) == before
        )
        (pkg / "sim.py").write_text("CONST = 2\n")
        assert (
            keys.hash_tree(pkg, exclude=keys.CODE_FINGERPRINT_EXCLUDES) != before
        )

    def test_model_fingerprint_reflects_cost_model(self, monkeypatch):
        """Retuning any latency constant invalidates every cached cell."""
        before = keys.model_fingerprint()
        keys.model_fingerprint.cache_clear()
        monkeypatch.setattr(
            keys, "CostModel", lambda: CostModel(vm_exit_cycles=4001)
        )
        try:
            assert keys.model_fingerprint() != before
        finally:
            keys.model_fingerprint.cache_clear()
