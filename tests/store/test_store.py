"""ResultStore round trips, safety rails, stats, GC and the CLI."""

import json

import numpy as np
import pytest

from repro.errors import StoreError
from repro.obs.metrics import MetricsRegistry
from repro.store import cli
from repro.store.store import ResultStore, decode_payload, encode_payload

KEY_A = "a" * 40
KEY_B = "b1" + "0" * 38


def _ingredients(**extra) -> dict:
    return {"kind": "test-cell", "workload": "gups", "seed": 0, **extra}


class TestRoundTrip:
    def test_get_returns_equal_value(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        value = {"cycles": 123.456, "nested": [1, (2, 3)]}
        assert store.put(KEY_A, value, _ingredients())
        assert store.get(KEY_A) == value

    def test_numpy_payloads_round_trip_exactly(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        value = {"arr": np.arange(64, dtype=np.uint64), "scalar": np.float64(0.1)}
        store.put(KEY_A, value, _ingredients())
        loaded = store.get(KEY_A)
        np.testing.assert_array_equal(loaded["arr"], value["arr"])
        assert loaded["scalar"] == value["scalar"]
        assert type(loaded["scalar"]) is np.float64

    def test_reopen_preserves_entries(self, tmp_path):
        ResultStore(tmp_path / "st").put(KEY_A, "v", _ingredients())
        assert ResultStore(tmp_path / "st").get(KEY_A) == "v"

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        assert store.get(KEY_A) is None
        assert store.stats.misses == 1

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        assert store.put(KEY_A, "first", _ingredients()) is True
        assert store.put(KEY_A, "second", _ingredients()) is False
        assert store.get(KEY_A) == "first"
        assert store.stats.puts == 1

    def test_payload_checksum_detects_tampering(self):
        payload, checksum, _ = encode_payload([1, 2, 3])
        envelope = {
            "payload_codec": "pickle+zlib+b64",
            "payload": payload,
            "payload_sha256": checksum,
        }
        assert decode_payload(envelope) == [1, 2, 3]
        envelope["payload_sha256"] = "0" * 64
        from repro.errors import StoreCorruptionError

        with pytest.raises(StoreCorruptionError):
            decode_payload(envelope)


class TestSafetyRails:
    def test_refuses_nonempty_unmarked_directory(self, tmp_path):
        victim = tmp_path / "home"
        victim.mkdir()
        (victim / "precious.txt").write_text("do not scribble\n")
        with pytest.raises(StoreError, match="STORE.json"):
            ResultStore(victim)
        assert (victim / "precious.txt").exists()

    def test_refuses_foreign_schema_version(self, tmp_path):
        root = tmp_path / "st"
        ResultStore(root)
        marker = json.loads((root / "STORE.json").read_text())
        marker["schema_version"] = 999
        (root / "STORE.json").write_text(json.dumps(marker))
        with pytest.raises(StoreError, match="schema"):
            ResultStore(root)

    def test_rejects_malformed_keys(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        for bad in ("", "short", "UPPERCASE" + "0" * 31, "../../etc/passwd"):
            with pytest.raises(StoreError):
                store.object_path(bad)


class TestStatsAndMetrics:
    def test_counts_and_registry_mirror(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "st", metrics=registry)
        store.get(KEY_A)
        store.put(KEY_A, 1, _ingredients())
        store.get(KEY_A)
        assert (store.stats.hits, store.stats.misses, store.stats.puts) == (1, 1, 1)
        assert registry.counter_value("store.hits") == 1
        assert registry.counter_value("store.misses") == 1
        assert registry.counter_value("store.puts") == 1


class TestInspection:
    def test_keys_and_len(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        store.put(KEY_B, 2, _ingredients(seed=1))
        assert store.keys() == sorted([KEY_A, KEY_B])
        assert len(store) == 2

    def test_entries_omit_payload_text(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, {"big": list(range(100))}, _ingredients())
        (entry,) = store.entries()
        assert "payload" not in entry
        assert entry["key"] == KEY_A
        assert entry["summary"]["workload"] == "gups"

    def test_verify_clean_store(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        report = store.verify()
        assert report.clean
        assert (report.checked, report.ok) == (1, 1)


class TestGC:
    def test_no_policy_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        assert store.gc() == []
        assert store.get(KEY_A) == 1

    def test_max_age_removes_only_old_entries(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        path = store.object_path(KEY_A)
        envelope = json.loads(path.read_text())
        envelope["created_at"] = "2001-01-01T00:00:00"
        # created_at drives GC, not the payload, so rewriting it in
        # place is fine for this test even though the checksum only
        # covers the payload bytes.
        path.write_text(json.dumps(envelope, sort_keys=True))
        store.put(KEY_B, 2, _ingredients(seed=1))
        removed = store.gc(max_age_days=30)
        assert removed == [KEY_A]
        assert store.get(KEY_A) is None
        assert store.get(KEY_B) == 2

    def test_keep_set_protects_entries(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        store.put(KEY_B, 2, _ingredients(seed=1))
        removed = store.gc(keep={KEY_A})
        assert removed == [KEY_B]
        assert store.get(KEY_A) == 1

    def test_dry_run_touches_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        store.put(KEY_A, 1, _ingredients())
        removed = store.gc(keep=set(), dry_run=True)
        assert removed == [KEY_A]
        assert store.get(KEY_A) == 1


class TestCLI:
    def test_ls_and_verify(self, tmp_path, capsys):
        root = tmp_path / "st"
        ResultStore(root).put(KEY_A, {"x": 1}, _ingredients())
        assert cli.main(["ls", "--store", str(root)]) == 0
        assert KEY_A[:12] in capsys.readouterr().out
        assert cli.main(["verify", "--store", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_json_shape(self, tmp_path, capsys):
        root = tmp_path / "st"
        ResultStore(root).put(KEY_A, 1, _ingredients())
        assert cli.main(["verify", "--store", str(root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["checked"] == 1

    def test_missing_store_is_a_clear_error(self, tmp_path, capsys):
        assert cli.main(["ls", "--store", str(tmp_path / "nope")]) == 2
        assert "no store at" in capsys.readouterr().err

    def test_export_bundles_entries(self, tmp_path, capsys):
        root = tmp_path / "st"
        store = ResultStore(root)
        store.put(KEY_A, 1, _ingredients())
        store.put(KEY_B, 2, _ingredients(seed=1))
        out = tmp_path / "bundle.json"
        assert (
            cli.main(
                ["export", "--store", str(root), "--out", str(out), KEY_A[:4]]
            )
            == 0
        )
        bundle = json.loads(out.read_text())
        assert bundle["kind"] == cli.EXPORT_KIND
        assert [e["key"] for e in bundle["entries"]] == [KEY_A]

    def test_gc_cli_dry_run(self, tmp_path, capsys):
        root = tmp_path / "st"
        ResultStore(root).put(KEY_A, 1, _ingredients())
        assert cli.main(["gc", "--store", str(root), "--dry-run"]) == 0
        assert "would remove 0" in capsys.readouterr().out
