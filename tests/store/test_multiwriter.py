"""Multi-writer safety: N processes, overlapping keys, one clean store.

The fabric's workers all commit into one store directory, so the store
must tolerate concurrent writers racing on the *same* content-addressed
keys: per-key atomic renames mean the last rename wins with identical
content, journal appends are single-write lines, and ``verify`` over
the quiesced store must come back clean with every key readable.

Writers open the store with ``recover=False`` -- recovery's journal
compaction is a single-owner operation (the coordinator/opening process
runs it while no puts are in flight), not something N concurrent
writers may each trigger mid-race.
"""

import hashlib
import multiprocessing

import pytest

from repro.store.store import MAX_COMMIT_RETRIES, ResultStore, StoreStats
from repro.errors import StoreError

WRITERS = 4
KEYS_PER_WRITER = 12
#: Writers deliberately overlap: every writer covers keys [0, 8) plus a
#: private tail, so most keys are raced by all four processes.
SHARED_KEYS = 8


def _key(index):
    return hashlib.sha256(f"multiwriter-{index}".encode()).hexdigest()


def _value(index):
    return {"index": index, "payload": list(range(index, index + 5))}


def _writer(root, writer_id):
    store = ResultStore(root, recover=False)
    written = 0
    for offset in range(KEYS_PER_WRITER):
        if offset < SHARED_KEYS:
            index = offset  # contended with every other writer
        else:
            index = 100 + writer_id * KEYS_PER_WRITER + offset
        if store.put(_key(index), _value(index), {"index": index}):
            written += 1
    return written


class TestMultiWriter:
    def test_concurrent_overlapping_writers_leave_a_clean_store(
        self, tmp_path
    ):
        root = tmp_path / "store"
        ResultStore(root)  # lay out once, as the coordinator would
        with multiprocessing.get_context().Pool(WRITERS) as pool:
            written = pool.starmap(
                _writer, [(root, writer_id) for writer_id in range(WRITERS)]
            )
        expected = set(range(SHARED_KEYS)) | {
            100 + writer_id * KEYS_PER_WRITER + offset
            for writer_id in range(WRITERS)
            for offset in range(SHARED_KEYS, KEYS_PER_WRITER)
        }
        # Raced keys may be written by several processes (idempotent),
        # but at least every distinct key landed once.
        assert sum(written) >= len(expected)

        store = ResultStore(root)  # quiesced: recovery + compaction OK
        assert len(store) == len(expected)
        report = store.verify()
        assert report.clean, [i.problem for i in report.issues]
        for index in sorted(expected):
            assert store.get(_key(index)) == _value(index)

    def test_duplicate_put_is_idempotent_not_rejournaled(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = _key(0)
        assert store.put(key, _value(0), {}) is True
        assert store.put(key, _value(0), {}) is False
        assert store.stats.puts == 1


class TestCommitRetry:
    def test_transient_oserror_is_retried_with_backoff(
        self, tmp_path, monkeypatch
    ):
        from repro.store import store as store_module

        store = ResultStore(tmp_path / "store")
        failures = {"left": 3}
        original = store_module._atomic_write_text

        def flaky(path, text):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient contention")
            original(path, text)

        monkeypatch.setattr(store_module, "_atomic_write_text", flaky)
        monkeypatch.setattr(store_module, "COMMIT_BACKOFF_BASE_S", 0.0001)
        assert store.put(_key(1), _value(1), {}) is True
        assert store.stats.commit_retries == 3
        assert store.get(_key(1)) == _value(1)
        assert store.verify().clean

    def test_persistent_oserror_exhausts_budget_and_raises(
        self, tmp_path, monkeypatch
    ):
        from repro.store import store as store_module

        store = ResultStore(tmp_path / "store")

        def always_broken(path, text):
            raise OSError("disk on fire")

        monkeypatch.setattr(store_module, "_atomic_write_text", always_broken)
        monkeypatch.setattr(store_module, "COMMIT_BACKOFF_BASE_S", 0.0001)
        with pytest.raises(StoreError, match="retries"):
            store.put(_key(2), _value(2), {})
        assert store.stats.commit_retries == MAX_COMMIT_RETRIES

    def test_retries_surface_in_stats_dict(self):
        stats = StoreStats(commit_retries=5)
        assert stats.as_dict()["commit_retries"] == 5
