"""The TranslationGeometry contract and its x86 bit-identity guarantee."""

import pytest

from repro.core import address
from repro.core.address import PageSize
from repro.errors import ConfigError
from repro.isa.geometry import (
    GEOMETRIES,
    SV39,
    SV48,
    SV57,
    X86_64,
    TranslationGeometry,
    get_geometry,
)
from repro.tlb.pwc import _LEVEL_SHIFT

ALL = list(GEOMETRIES.values())


# ----------------------------------------------------------------------
# Registry


def test_registry_names():
    assert set(GEOMETRIES) == {"x86_64", "sv39", "sv48", "sv57"}
    for name, geometry in GEOMETRIES.items():
        assert geometry.name == name


def test_lookup_is_case_insensitive_and_aliased():
    assert get_geometry("SV48") is SV48
    assert get_geometry("x86") is X86_64
    assert get_geometry("x86_64_4level") is X86_64
    assert get_geometry(" x86-64 ") is X86_64


def test_unknown_isa_raises_config_error():
    with pytest.raises(ConfigError, match="unknown ISA"):
        get_geometry("sv64")


def test_malformed_geometry_rejected():
    with pytest.raises(ConfigError, match="!= address bits"):
        TranslationGeometry(name="bad", address_bits=48, radix_bits=(9, 9, 9))
    with pytest.raises(ConfigError, match="level names"):
        TranslationGeometry(
            name="bad", address_bits=30, radix_bits=(9, 9), level_names=("A",)
        )


# ----------------------------------------------------------------------
# x86 equivalence: the geometry reproduces every hard-coded constant.


def test_x86_matches_core_address_constants():
    assert X86_64.address_bits == address.ADDRESS_BITS
    assert X86_64.levels == 4
    assert X86_64.base_page_bits == address.BASE_PAGE_BITS
    va = 0x0000_7F1E_2D3C_4B5A
    for level in range(4):
        assert X86_64.radix_index(va, level) == address.radix_index(va, level)


def test_x86_matches_pwc_shifts():
    assert X86_64.pwc_shifts() == _LEVEL_SHIFT
    assert X86_64.skippable_levels() == (0, 1, 2)


def test_x86_matches_page_size_levels():
    # PageSize.levels is the x86 walk depth; the geometry must agree.
    for page_size in PageSize:
        assert X86_64.walk_levels(page_size) == page_size.levels


def test_x86_level_labels():
    assert [X86_64.level_label(i) for i in range(4)] == [
        "PML4",
        "PDPT",
        "PD",
        "PT",
    ]
    assert X86_64.gstage() is X86_64  # EPT reuses the same geometry


# ----------------------------------------------------------------------
# RISC-V shapes


@pytest.mark.parametrize(
    "geometry,levels,bits",
    [(SV39, 3, 39), (SV48, 4, 48), (SV57, 5, 57)],
)
def test_riscv_shapes(geometry, levels, bits):
    assert geometry.levels == levels
    assert geometry.address_bits == bits
    # All RISC-V modes share x86's 4K/2M/1G ladder names at the bottom.
    assert geometry.supports_page(PageSize.SIZE_4K)
    assert geometry.supports_page(PageSize.SIZE_2M)
    assert geometry.supports_page(PageSize.SIZE_1G)
    assert geometry.walk_levels(PageSize.SIZE_4K) == levels


@pytest.mark.parametrize("geometry", [SV39, SV48, SV57])
def test_gstage_widens_root_by_two_bits(geometry):
    gstage = geometry.gstage()
    assert gstage.address_bits == geometry.address_bits + 2
    assert gstage.radix_bits[0] == geometry.radix_bits[0] + 2
    assert gstage.radix_bits[1:] == geometry.radix_bits[1:]
    assert gstage.levels == geometry.levels  # wider root, not deeper
    assert gstage.name == f"{geometry.name}x4"
    # The widened root holds 2048 entries (16 KiB of PTEs).
    assert gstage.radix_mask(0) == 2047
    assert gstage.gstage() is gstage  # composition is idempotent
    # Prefix shifts below the root are unchanged, so PWC prefixes match.
    for level in range(1, geometry.levels):
        assert gstage.level_shift(level) == geometry.level_shift(level)


# ----------------------------------------------------------------------
# Contract properties over every registered geometry


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_shifts_and_masks_tile_the_address(geometry):
    va = (1 << geometry.address_bits) - 1  # all-ones canonical address
    indices = geometry.radix_indices(va)
    assert len(indices) == geometry.levels
    for level, index in enumerate(indices):
        assert index == geometry.radix_mask(level)
    # Reassembling indices + page offset reproduces the address.
    rebuilt = va & ((1 << geometry.base_page_bits) - 1)
    for level, index in enumerate(indices):
        rebuilt |= index << geometry.level_shift(level)
    assert rebuilt == va


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_canonicality(geometry):
    top = 1 << geometry.address_bits
    assert geometry.is_canonical(0)
    assert geometry.is_canonical(top - 1)
    assert not geometry.is_canonical(top)
    assert not geometry.is_canonical(-1)
    assert geometry.check_canonical(top - 1) == top - 1
    with pytest.raises(ConfigError, match="outside"):
        geometry.check_canonical(top)


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_level_bounds_raise_config_error(geometry):
    with pytest.raises(ConfigError):
        geometry.radix_index(0, geometry.levels)
    with pytest.raises(ConfigError):
        geometry.radix_index(0, -1)
    with pytest.raises(ConfigError):
        geometry.level_label(geometry.levels)


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_unsupported_page_size_raises(geometry):
    class FakeSize:
        bits = 13
        label = "8K"

    assert not geometry.supports_page(FakeSize())
    with pytest.raises(ConfigError, match="no level maps"):
        geometry.leaf_level(FakeSize())


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_fingerprint_identifies_geometry(geometry):
    fp = geometry.fingerprint()
    assert fp["name"] == geometry.name
    assert fp["radix_bits"] == list(geometry.radix_bits)
    others = [g.fingerprint() for g in ALL if g is not geometry]
    assert fp not in others


# ----------------------------------------------------------------------
# Satellite: core.address.radix_index raises ConfigError, not bare
# ValueError (ConfigError subclasses ValueError for compatibility).


def test_address_radix_index_out_of_range_is_config_error():
    with pytest.raises(ConfigError):
        address.radix_index(0, 4)
    with pytest.raises(ConfigError):
        address.radix_index(0, -1)
    # Still a ValueError for callers catching the historical type.
    with pytest.raises(ValueError):
        address.radix_index(0, 4)
