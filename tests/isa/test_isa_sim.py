"""ISA axis end-to-end: label grammar, key non-aliasing, RISC-V sweeps."""

import pytest

from repro.core.modes import TranslationMode, capability_matrix
from repro.errors import ConfigError
from repro.experiments.common import isa_configs
from repro.experiments.parallel import CellTask
from repro.isa.geometry import SV48, X86_64
from repro.sim import trace_cache
from repro.sim.config import parse_config
from repro.sim.simulator import simulate
from repro.store.keys import cell_key, config_params, grid_cell_ingredients
from tests.conftest import TinyWorkload

TRACE_LENGTH = 1500


# ----------------------------------------------------------------------
# Label grammar


def test_bare_labels_stay_x86():
    config = parse_config("4K+2M")
    assert config.label == "4K+2M"
    assert config.isa_name() == "x86_64"
    assert config.translation_geometry() is X86_64
    assert config.nested_geometry() is X86_64


def test_isa_prefix_parses_and_canonicalizes():
    config = parse_config("sv48/4k+2m")
    assert config.label == "sv48/4K+2M"
    assert config.isa_name() == "sv48"
    assert config.translation_geometry() is SV48
    assert config.nested_geometry().name == "sv48x4"


def test_explicit_default_prefix_normalizes_to_bare_label():
    assert parse_config("x86_64/4K") == parse_config("4K")
    assert parse_config("x86/DD") == parse_config("DD")


def test_unknown_isa_prefix_rejected():
    with pytest.raises(ConfigError, match="unknown ISA"):
        parse_config("sv64/4K")


def test_double_isa_prefix_rejected():
    with pytest.raises(ConfigError, match="one ISA prefix"):
        parse_config("x86_64/x86_64/4K")
    with pytest.raises(ConfigError, match="one ISA prefix"):
        parse_config("sv48/sv39/4K")


def test_sv39_has_no_512g_but_all_modelled_sizes():
    # All modelled page sizes exist on sv39 (9-bit levels, 12-bit base).
    for label in ("sv39/4K", "sv39/2M", "sv39/1G", "sv39/1G+1G"):
        parse_config(label)


def test_isa_configs_helper():
    assert isa_configs(("4K", "DD"), "x86_64") == ("4K", "DD")
    assert isa_configs(("4K", "DD"), "sv48") == ("sv48/4K", "sv48/DD")
    with pytest.raises(ConfigError, match="unknown ISA"):
        isa_configs(("4K",), "sv64")


# ----------------------------------------------------------------------
# Satellite: store keys and trace-cache keys never alias across ISAs


def test_config_params_carry_geometry_fingerprint():
    x86 = config_params("4K+4K")
    sv48 = config_params("sv48/4K+4K")
    assert x86["isa"] == "x86_64"
    assert sv48["isa"] == "sv48"
    assert x86["geometry"] != sv48["geometry"]


def test_store_cell_keys_never_alias_across_isas():
    def key(config):
        task = CellTask(
            workload="gups", config=config, trace_length=1000, seed=0, obs=None
        )
        return cell_key(grid_cell_ingredients(task))

    keys = {key(c) for c in ("4K+4K", "sv39/4K+4K", "sv48/4K+4K", "sv57/4K+4K")}
    assert len(keys) == 4


def test_trace_cache_keys_never_alias_across_isas():
    workload = TinyWorkload()
    x86 = trace_cache.trace_key(workload, 1000, 0)
    sv48 = trace_cache.trace_key(workload, 1000, 0, isa="sv48")
    assert x86 != sv48
    assert x86[-1] == "x86_64"
    assert sv48[-1] == "sv48"


# ----------------------------------------------------------------------
# Capability matrix per ISA


@pytest.mark.parametrize("isa", ["sv39", "sv48", "sv57"])
def test_capability_matrix_follows_level_counts(isa):
    from repro.isa.geometry import get_geometry

    geometry = get_geometry(isa)
    matrix = capability_matrix(geometry)
    g = geometry.levels
    m = geometry.gstage().levels
    base = matrix[TranslationMode.BASE_VIRTUALIZED]
    assert base.walk_memory_accesses == (g + 1) * (m + 1) - 1
    assert matrix[TranslationMode.DUAL_DIRECT].walk_memory_accesses == 0
    assert matrix[TranslationMode.VMM_DIRECT].walk_memory_accesses == g
    assert matrix[TranslationMode.VMM_DIRECT].base_bound_checks == g + 1
    assert matrix[TranslationMode.GUEST_DIRECT].walk_memory_accesses == m


def test_x86_capability_matrix_reproduces_table2():
    from repro.core.modes import MODE_PROPERTIES

    assert capability_matrix(X86_64) == MODE_PROPERTIES


# ----------------------------------------------------------------------
# End-to-end: the paper's shape holds on RISC-V


@pytest.mark.parametrize("isa", ["sv39", "sv48", "sv57"])
def test_dual_direct_collapses_walk_on_riscv(isa):
    """A figure11-style mode comparison per RISC-V geometry: nested
    paging pays a 2D walk, Dual Direct collapses it to O(1)."""
    workload = TinyWorkload()
    native = simulate(f"{isa}/4K", workload, trace_length=TRACE_LENGTH, seed=2)
    virt = simulate(f"{isa}/4K+4K", workload, trace_length=TRACE_LENGTH, seed=2)
    dd = simulate(f"{isa}/DD", workload, trace_length=TRACE_LENGTH, seed=2)

    # Virtualization inflates translation cost; Dual Direct removes
    # nearly all of it (same ordering the paper shows on x86).
    assert virt.overhead_percent > native.overhead_percent
    assert dd.overhead_percent < virt.overhead_percent
    assert dd.overhead_percent < native.overhead_percent
    assert dd.run.translation_cycles < 0.05 * virt.run.translation_cycles


def test_deeper_geometry_walks_cost_more():
    """sv57's 5-level 2D walk is at least as costly as sv39's 3-level."""
    workload = TinyWorkload()
    shallow = simulate(
        "sv39/4K+4K", workload, trace_length=TRACE_LENGTH, seed=2
    )
    deep = simulate("sv57/4K+4K", workload, trace_length=TRACE_LENGTH, seed=2)
    assert deep.run.translation_cycles >= shallow.run.translation_cycles
