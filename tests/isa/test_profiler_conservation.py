"""Satellite: profiler conservation at 3 and 5 radix levels.

The cycle-accounting profiler's books are label-driven, so variable
level counts must fall out for free: per-(structure, level, cause)
fixed-point sums must equal the MMU's ``translation_cycles`` by integer
equality for sv39 (3 levels) and sv57 (5 levels, widened G-stage root),
on both the scalar and batched engines.
"""

import numpy as np
import pytest

from repro.obs.profiler import WalkProfiler, to_fixed
from repro.sim.config import parse_config
from repro.sim.engine import access_batch
from repro.sim.system import build_system, populate_for_addresses
from tests.conftest import TinyWorkload

TRACE_LENGTH = 2000

#: 3-level and 5-level grids: native, full 2D, and the flattened modes.
ISA_LABELS = [
    "sv39/4K",
    "sv39/4K+4K",
    "sv39/DD",
    "sv39/4K+VD",
    "sv57/4K",
    "sv57/4K+4K",
    "sv57/DD",
    "sv57/4K+GD",
]


def _profiled_run(label: str, engine: str, seed: int = 7):
    """One populated system driven through one engine with a profiler."""
    workload = TinyWorkload()
    system = build_system(parse_config(label), workload.spec)
    trace = workload.trace(TRACE_LENGTH, seed=seed)
    rebased = (trace.astype(np.int64) << 12) + system.base_va
    populate_for_addresses(system, np.unique(rebased))
    profiler = WalkProfiler(seed=0)
    profiler.attach(system)
    if engine == "scalar":
        access = system.mmu.access
        for va in map(int, rebased):
            access(va)
    else:
        access_batch(system.mmu, rebased)
    return system, profiler.finalize(system)


@pytest.mark.parametrize("engine", ["scalar", "batched"])
@pytest.mark.parametrize("label", ISA_LABELS)
def test_conservation_exact_at_3_and_5_levels(label, engine):
    """Attributed cycles == modelled cycles, to the last fixed-point bit."""
    system, snapshot = _profiled_run(label, engine)
    expected = to_fixed(system.mmu.counters.translation_cycles)
    assert snapshot["total_cycles_fp"] == expected
    assert snapshot["total_cycles_fp"] == sum(
        axis["cycles_fp"] for axis in snapshot["axes"].values()
    )
    assert sum(snapshot["folded"].values()) == expected
    assert "walk|-|unattributed" not in snapshot["axes"]


@pytest.mark.parametrize("label", ["sv39/4K+4K", "sv57/4K+4K"])
def test_isa_profiles_engine_invariant(label):
    """Scalar and batched runs produce byte-identical profiles."""
    _, scalar_snapshot = _profiled_run(label, "scalar")
    _, batched_snapshot = _profiled_run(label, "batched")
    assert scalar_snapshot == batched_snapshot


@pytest.mark.parametrize(
    "label,levels", [("sv39/4K+4K", 3), ("sv57/4K+4K", 5)]
)
def test_level_axes_follow_geometry(label, levels):
    """The per-level attribution rows track the ISA's level count."""
    _, snapshot = _profiled_run(label, "batched")
    guest_levels = {
        key.split("|")[1]
        for key in snapshot["axes"]
        if key.startswith("guest|L")
    }
    host_levels = {
        key.split("|")[1]
        for key in snapshot["axes"]
        if key.startswith("host|L")
    }
    assert guest_levels == {f"L{i}" for i in range(1, levels + 1)}
    # The G-stage has the same level count (wider root, not deeper).
    assert host_levels == {f"L{i}" for i in range(1, levels + 1)}
