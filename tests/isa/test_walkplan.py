"""Satellite property test: 2D walk enumeration vs the closed forms.

For every registered geometry the planned walk must have exactly
``(n+1)(m+1)-1`` references at 4K leaves, drop by the closed-form
amounts for large-page leaves and PWC skip depths, and agree with the
step traces the real page tables and walkers produce.
"""

import itertools

import pytest

from repro.core.address import GIB, PageSize
from repro.core.costs import DEFAULT_COSTS
from repro.core.walker import NativeWalker, NestedWalker
from repro.errors import ConfigError
from repro.isa.geometry import GEOMETRIES
from repro.isa.walkplan import (
    expected_2d_references,
    walk_plan_1d,
    walk_plan_2d,
)
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import TLBHierarchy

ALL = list(GEOMETRIES.values())

#: A test virtual address canonical in every geometry (sv39 included).
TEST_VA = 16 * GIB + 0x5000


def _table(geometry, first_frame=0x100):
    counter = itertools.count(first_frame)
    return PageTable(lambda: next(counter), geometry=geometry)


# ----------------------------------------------------------------------
# Closed forms


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_full_2d_walk_is_n_plus_1_m_plus_1_minus_1(geometry):
    n = geometry.walk_levels(PageSize.SIZE_4K)
    m = geometry.gstage().walk_levels(PageSize.SIZE_4K)
    plan = walk_plan_2d(geometry)
    assert len(plan) == expected_2d_references(n, m) == n * (m + 1) + m
    # The paper's testbed arithmetic: 24 references at (4, 4).
    if geometry.name == "x86_64":
        assert len(plan) == 24


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
@pytest.mark.parametrize(
    "large", [PageSize.SIZE_2M, PageSize.SIZE_1G], ids=lambda p: p.label
)
def test_large_guest_leaf_drops_m_plus_1_per_level(geometry, large):
    m = geometry.gstage().walk_levels(PageSize.SIZE_4K)
    base = len(walk_plan_2d(geometry))
    plan = walk_plan_2d(geometry, guest_page=large)
    dropped_levels = (
        geometry.walk_levels(PageSize.SIZE_4K) - geometry.walk_levels(large)
    )
    # Each dropped guest level removes its nested sub-walk (m refs) plus
    # its own guest PTE load.
    assert len(plan) == base - dropped_levels * (m + 1)


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
@pytest.mark.parametrize(
    "large", [PageSize.SIZE_2M, PageSize.SIZE_1G], ids=lambda p: p.label
)
def test_large_nested_leaf_drops_g_plus_1_per_level(geometry, large):
    gstage = geometry.gstage()
    g = geometry.walk_levels(PageSize.SIZE_4K)
    base = len(walk_plan_2d(geometry))
    plan = walk_plan_2d(geometry, nested_page=large)
    dropped = gstage.walk_levels(PageSize.SIZE_4K) - gstage.walk_levels(large)
    # Each dropped nested level shortens all g+1 nested sub-walks by one.
    assert len(plan) == base - dropped * (g + 1)


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_pwc_skip_drops_m_plus_1_per_level(geometry):
    n = geometry.walk_levels(PageSize.SIZE_4K)
    m = geometry.gstage().walk_levels(PageSize.SIZE_4K)
    base = len(walk_plan_2d(geometry))
    for skip in range(n):
        plan = walk_plan_2d(geometry, guest_skip_levels=skip)
        assert len(plan) == base - skip * (m + 1)
        assert len(walk_plan_1d(geometry, skip_levels=skip)) == n - skip
    with pytest.raises(ConfigError):
        walk_plan_1d(geometry, skip_levels=n)


# ----------------------------------------------------------------------
# Cross-check against real page-table step traces


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_1d_plan_matches_page_table_steps(geometry):
    for page_size in geometry.page_sizes():
        table = _table(geometry)
        va = TEST_VA - (TEST_VA % int(page_size))
        table.map(va, 0x40000000, page_size)
        result = table.walk(va)
        plan = walk_plan_1d(geometry, page_size)
        assert len(result.steps) == len(plan)
        assert [s.level for s in result.steps] == [
            p.guest_level for p in plan
        ]


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_1d_plan_matches_native_walker_refs(geometry):
    table = _table(geometry)
    table.map(TEST_VA, 0x40000000, PageSize.SIZE_4K)
    walker = NativeWalker(table, DEFAULT_COSTS)
    cold = walker.walk(TEST_VA)
    assert cold.refs == len(walk_plan_1d(geometry))
    # Second walk: the PWC covers every skippable level; only the leaf
    # PTE is loaded -- the deepest-skip plan.
    warm = walker.walk(TEST_VA)
    n = geometry.walk_levels(PageSize.SIZE_4K)
    assert warm.refs == len(walk_plan_1d(geometry, skip_levels=n - 1)) == 1


@pytest.mark.parametrize("geometry", ALL, ids=lambda g: g.name)
def test_2d_plan_matches_nested_walker_raw_refs(geometry):
    gstage = geometry.gstage()
    guest_table = _table(geometry, first_frame=0x100)
    nested_table = _table(gstage, first_frame=0x100000)

    gpa = 0x40000000
    hpa = 0x80000000
    guest_table.map(TEST_VA, gpa, PageSize.SIZE_4K)
    # Back every guest page-table node and the data page in the nested
    # dimension so a real 2D walk can resolve each pointer.
    for frame in guest_table.node_frames:
        nested_table.map(frame * 4096, hpa + frame * 4096, PageSize.SIZE_4K)
    nested_table.map(gpa, hpa, PageSize.SIZE_4K)

    walker = NestedWalker(guest_table, nested_table, DEFAULT_COSTS, TLBHierarchy())
    outcome = walker.walk(TEST_VA)
    # raw_refs is the walker's cold-cache arithmetic: it must equal the
    # planned reference count exactly.
    plan = walk_plan_2d(geometry)
    assert outcome.raw_refs == len(plan)
    n = geometry.walk_levels(PageSize.SIZE_4K)
    m = gstage.walk_levels(PageSize.SIZE_4K)
    assert outcome.raw_refs == expected_2d_references(n, m)


def test_plan_shape_guest_steps_interleave_nested_subwalks():
    plan = walk_plan_2d(GEOMETRIES["sv48"])
    m = GEOMETRIES["sv48"].gstage().walk_levels(PageSize.SIZE_4K)
    # Pattern: (m nested, 1 guest) x n, then m nested for the final gPA.
    chunks = [plan[i : i + m + 1] for i in range(0, len(plan) - m, m + 1)]
    for chunk in chunks:
        assert [s.dimension for s in chunk] == ["nested"] * m + ["guest"]
    assert all(s.dimension == "nested" for s in plan[-m:])
    assert all(s.guest_level is None for s in plan[-m:])
