"""Tests for the fault injector: scheduling, validation, delivery."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.degradation import DegradationAction
from repro.faults.injector import (
    BalloonInflationFailure,
    DramHardFault,
    EscapeFilterExhaustion,
    FaultInjector,
    FragmentationShock,
    InjectedFault,
    TransientAllocationFailures,
)
from repro.mem.frame_allocator import MAX_ALLOC_RETRIES
from repro.sim.config import parse_config
from repro.sim.system import build_system


class TestEventValidation:
    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            DramHardFault(at_ref=0, placement="nowhere")

    def test_fragmentation_fraction_bounded(self):
        with pytest.raises(ValueError):
            FragmentationShock(at_ref=0, fraction=1.5)

    def test_transient_count_must_fit_retry_budget(self):
        with pytest.raises(ValueError):
            TransientAllocationFailures(at_ref=0, count=MAX_ALLOC_RETRIES)
        with pytest.raises(ValueError):
            TransientAllocationFailures(at_ref=0, count=0)

    def test_balloon_size_positive(self):
        with pytest.raises(ValueError):
            BalloonInflationFailure(at_ref=0, size_bytes=0)

    def test_base_event_is_abstract(self):
        with pytest.raises(NotImplementedError):
            InjectedFault(at_ref=0).deliver(None, None)


class TestScheduling:
    def test_events_sorted_by_at_ref(self):
        injector = FaultInjector(
            [
                EscapeFilterExhaustion(at_ref=30),
                TransientAllocationFailures(at_ref=10),
                FragmentationShock(at_ref=20),
            ],
            seed=0,
        )
        assert [e.at_ref for e in injector.events] == [10, 20, 30]
        assert injector.pending == 3

    def test_nothing_due_is_cheap_noop(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        injector = FaultInjector(
            [FragmentationShock(at_ref=100)], seed=0
        )
        assert injector.deliver_due(5, system) == []
        assert injector.pending == 1
        assert injector.delivered == []

    def test_due_events_delivered_in_order(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        injector = FaultInjector(
            [
                FragmentationShock(at_ref=4, fraction=0.01),
                TransientAllocationFailures(at_ref=2, count=1),
            ],
            seed=0,
        )
        notes = injector.deliver_due(10, system)
        assert len(notes) == 2
        assert injector.pending == 0
        assert [ref for ref, _, _ in injector.delivered] == [10, 10]
        # First delivered event is the earliest-scheduled one.
        assert isinstance(injector.delivered[0][1], TransientAllocationFailures)

    def test_chaos_plan_rejects_tiny_traces(self):
        with pytest.raises(ValueError):
            FaultInjector.chaos_plan(5)

    def test_chaos_plan_schedule_fits_trace(self):
        injector = FaultInjector.chaos_plan(1000, seed=3, extra_hard_faults=4)
        assert all(0 <= e.at_ref < 1000 for e in injector.events)
        kinds = {type(e) for e in injector.events}
        assert DramHardFault in kinds
        assert EscapeFilterExhaustion in kinds
        assert BalloonInflationFailure in kinds


class TestDelivery:
    def test_vm_events_need_a_vm(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        injector = FaultInjector([DramHardFault(at_ref=0)], seed=0)
        with pytest.raises(FaultInjectionError):
            injector.deliver_due(0, system)

    def test_hard_fault_under_segment_escapes(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        injector = FaultInjector(
            [DramHardFault(at_ref=0, placement="segment")], seed=1
        )
        notes = injector.deliver_due(0, system)
        assert len(notes) == 1
        log = system.hypervisor.degradation_log
        assert log.count(DegradationAction.ESCAPE) == 1
        assert log.events[0].ref_index == 0
        # Delivery resynced the walker's registers and filter view.
        assert system.mmu.walker.vmm_escape_filter is system.vm.escape_filter

    def test_transient_failures_armed_on_host_allocator(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        injector = FaultInjector(
            [TransientAllocationFailures(at_ref=0, count=2)], seed=0
        )
        injector.deliver_due(0, system)
        allocator = system.hypervisor.allocator
        assert allocator.transient_failures_armed == 2
        # The next allocation absorbs the burst through retries.
        allocator.alloc_block(0)
        assert allocator.transient_failures_armed == 0
        assert allocator.retry_stats.transient_failures == 2
        assert allocator.retry_stats.backoff_cycles > 0

    def test_balloon_failure_rolls_back_and_tolerates(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        injector = FaultInjector(
            [BalloonInflationFailure(at_ref=0)], seed=0
        )
        notes = injector.deliver_due(0, system)
        assert "failed" in notes[0]
        log = system.hypervisor.degradation_log
        assert log.count(DegradationAction.TOLERATE) == 1
        assert system.vm.balloon_failures_armed == 0

    def test_filter_exhaustion_caps_at_current_occupancy(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        injector = FaultInjector([EscapeFilterExhaustion(at_ref=0)], seed=0)
        injector.deliver_due(0, system)
        assert system.vm.escape_filter.is_full
