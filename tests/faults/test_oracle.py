"""Tests for the translation-consistency oracle."""

import pytest

from repro.errors import TranslationOracleError
from repro.faults.injector import DramHardFault, FaultInjector
from repro.faults.oracle import TranslationOracle
from repro.sim.config import parse_config
from repro.sim.system import build_system


def _touched_addresses(system, count=64, stride=4096):
    base = system.base_va
    return [base + i * stride for i in range(count)]


class TestShadowTranslate:
    @pytest.mark.parametrize("label", ["4K", "2M", "DS", "4K+4K", "DD", "4K+VD"])
    def test_agrees_with_mmu_in_every_mode(self, tiny_workload, label):
        system = build_system(parse_config(label), tiny_workload.spec)
        oracle = TranslationOracle(system)
        report = oracle.audit_addresses(_touched_addresses(system))
        assert report.clean
        assert report.checks > 0

    def test_unmapped_address_is_unresolved(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        oracle = TranslationOracle(system)
        # Nothing faulted in yet: ground truth is indeterminate.
        assert oracle.shadow_translate(system.base_va) is None

    def test_agrees_after_injected_hard_fault(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        oracle = TranslationOracle(system)
        addresses = _touched_addresses(system, count=128)
        assert oracle.audit_addresses(addresses).clean
        injector = FaultInjector(
            [DramHardFault(at_ref=0, placement="segment")], seed=2
        )
        injector.deliver_due(0, system)
        assert oracle.audit_addresses(addresses).clean


class TestChecking:
    def test_wrong_frame_is_a_mismatch(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        oracle = TranslationOracle(system)
        va = system.base_va
        frame = system.mmu.touch(va)
        assert oracle.check(va, frame)
        assert not oracle.check(va, frame + 1)
        assert oracle.report.mismatches == 1
        assert not oracle.report.clean
        assert oracle.report.samples[0].observed_frame == frame + 1

    def test_strict_mode_raises(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        oracle = TranslationOracle(system, strict=True)
        va = system.base_va
        frame = system.mmu.touch(va)
        with pytest.raises(TranslationOracleError):
            oracle.check(va, frame + 1)

    def test_sampling_skips_off_stride_references(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        oracle = TranslationOracle(system, sample_every=4)
        va = system.base_va
        frame = system.mmu.touch(va)
        oracle.observe(1, va, frame + 999)  # off-stride: not checked
        assert oracle.report.mismatches == 0
        oracle.observe(4, va, frame)
        assert oracle.report.checks == 1

    def test_recorded_mismatches_are_bounded(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        oracle = TranslationOracle(system)
        va = system.base_va
        frame = system.mmu.touch(va)
        for _ in range(oracle.MAX_RECORDED_MISMATCHES + 10):
            oracle.check(va, frame + 1)
        assert len(oracle.report.samples) == oracle.MAX_RECORDED_MISMATCHES
        assert (
            oracle.report.mismatches == oracle.MAX_RECORDED_MISMATCHES + 10
        )

    def test_sample_every_validated(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        with pytest.raises(ValueError):
            TranslationOracle(system, sample_every=0)
