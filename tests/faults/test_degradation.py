"""Tests for the degradation vocabulary: actions, events, log."""

import pytest

from repro.core.modes import TranslationMode
from repro.faults.degradation import (
    DegradationAction,
    DegradationEvent,
    DegradationLog,
)


class TestDegradationEvent:
    def test_mode_transition_detection(self):
        same = DegradationEvent(
            ref_index=1,
            vm_name="a",
            action=DegradationAction.ESCAPE,
            detail="x",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.DUAL_DIRECT,
        )
        changed = DegradationEvent(
            ref_index=2,
            vm_name="a",
            action=DegradationAction.FALLBACK,
            detail="y",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.GUEST_DIRECT,
        )
        assert not same.is_mode_transition
        assert changed.is_mode_transition

    def test_host_level_event_has_no_modes(self):
        event = DegradationEvent(
            ref_index=0,
            vm_name="host",
            action=DegradationAction.QUARANTINE,
            detail="z",
        )
        assert event.from_mode is None
        assert not event.is_mode_transition


class TestDegradationLog:
    def _populated(self) -> DegradationLog:
        log = DegradationLog()
        log.record(0, "a", DegradationAction.ESCAPE, "e", cycle_cost=100.0)
        log.record(1, "a", DegradationAction.SHRINK, "s", cycle_cost=200.0)
        log.record(
            2,
            "a",
            DegradationAction.FALLBACK,
            "f",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.GUEST_DIRECT,
            cycle_cost=300.0,
        )
        return log

    def test_record_returns_the_event(self):
        log = DegradationLog()
        event = log.record(5, "vm", DegradationAction.REMAP, "detail")
        assert event in log.events
        assert event.ref_index == 5

    def test_counts_and_length(self):
        log = self._populated()
        assert len(log) == 3
        assert log.count(DegradationAction.ESCAPE) == 1
        assert log.count(DegradationAction.QUARANTINE) == 0

    def test_mode_transitions(self):
        log = self._populated()
        transitions = log.mode_transitions
        assert len(transitions) == 1
        assert transitions[0].action is DegradationAction.FALLBACK

    def test_total_cycle_cost(self):
        log = self._populated()
        assert log.total_cycle_cost == pytest.approx(600.0)

    def test_summary_mentions_every_action_taken(self):
        text = self._populated().summary()
        assert "escape" in text
        assert "shrink" in text
        assert "fallback" in text


class TestEventOrdering:
    """Regression tests: events carry a monotonic ordering key.

    ``ref_index`` alone cannot order a log -- one hard fault can fire
    several ladder rungs at the same reference index, and unit-test
    events all sit at -1 -- so ``record()`` stamps each append with a
    sequence number and ``sorted_events()`` gives the total order.
    """

    def test_record_stamps_monotonic_seq(self):
        log = DegradationLog()
        events = [
            log.record(-1, "a", DegradationAction.ESCAPE, str(i))
            for i in range(5)
        ]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_standalone_event_is_unstamped(self):
        event = DegradationEvent(
            ref_index=0, vm_name="a", action=DegradationAction.REMAP, detail=""
        )
        assert event.seq == -1

    def test_order_key_breaks_ref_index_ties_by_append_order(self):
        log = DegradationLog()
        first = log.record(7, "a", DegradationAction.ESCAPE, "first")
        second = log.record(7, "a", DegradationAction.SHRINK, "second")
        assert first.order_key < second.order_key

    def test_sorted_events_total_order(self):
        log = DegradationLog()
        log.record(9, "a", DegradationAction.ESCAPE, "late")
        log.record(2, "a", DegradationAction.ESCAPE, "early")
        log.record(2, "a", DegradationAction.SHRINK, "early-second")
        ordered = log.sorted_events()
        assert [e.detail for e in ordered] == ["early", "early-second", "late"]
        # Sorting is deterministic and idempotent.
        assert log.sorted_events() == ordered
        # The log itself is untouched (append order preserved).
        assert [e.detail for e in log.events] == [
            "late",
            "early",
            "early-second",
        ]

    def test_same_ref_index_preserves_append_order(self):
        log = DegradationLog()
        details = [str(i) for i in range(10)]
        for d in details:
            log.record(-1, "a", DegradationAction.TOLERATE, d)
        assert [e.detail for e in log.sorted_events()] == details


class TestLogMetrics:
    def test_record_feeds_attached_registry(self):
        from repro.obs.metrics import MetricsRegistry

        log = DegradationLog()
        log.metrics = MetricsRegistry()
        log.record(0, "a", DegradationAction.ESCAPE, "e", cycle_cost=100.0)
        log.record(
            1,
            "a",
            DegradationAction.FALLBACK,
            "f",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.GUEST_DIRECT,
            cycle_cost=300.0,
        )
        m = log.metrics
        assert m.counter_value("degradation.events.escape") == 1
        assert m.counter_value("degradation.events.fallback") == 1
        assert m.counter_value("degradation.mode_transitions") == 1
        hist = m.histogram("degradation.cycle_cost")
        assert hist.count == 2
        assert hist.total == pytest.approx(400.0)

    def test_disabled_registry_records_nothing(self):
        from repro.obs.metrics import MetricsRegistry

        log = DegradationLog()
        log.metrics = MetricsRegistry(enabled=False)
        log.record(0, "a", DegradationAction.ESCAPE, "e")
        assert log.metrics.snapshot() == {}
        assert len(log) == 1  # the log itself still records
