"""Tests for the degradation vocabulary: actions, events, log."""

import pytest

from repro.core.modes import TranslationMode
from repro.faults.degradation import (
    DegradationAction,
    DegradationEvent,
    DegradationLog,
)


class TestDegradationEvent:
    def test_mode_transition_detection(self):
        same = DegradationEvent(
            ref_index=1,
            vm_name="a",
            action=DegradationAction.ESCAPE,
            detail="x",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.DUAL_DIRECT,
        )
        changed = DegradationEvent(
            ref_index=2,
            vm_name="a",
            action=DegradationAction.FALLBACK,
            detail="y",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.GUEST_DIRECT,
        )
        assert not same.is_mode_transition
        assert changed.is_mode_transition

    def test_host_level_event_has_no_modes(self):
        event = DegradationEvent(
            ref_index=0,
            vm_name="host",
            action=DegradationAction.QUARANTINE,
            detail="z",
        )
        assert event.from_mode is None
        assert not event.is_mode_transition


class TestDegradationLog:
    def _populated(self) -> DegradationLog:
        log = DegradationLog()
        log.record(0, "a", DegradationAction.ESCAPE, "e", cycle_cost=100.0)
        log.record(1, "a", DegradationAction.SHRINK, "s", cycle_cost=200.0)
        log.record(
            2,
            "a",
            DegradationAction.FALLBACK,
            "f",
            from_mode=TranslationMode.DUAL_DIRECT,
            to_mode=TranslationMode.GUEST_DIRECT,
            cycle_cost=300.0,
        )
        return log

    def test_record_returns_the_event(self):
        log = DegradationLog()
        event = log.record(5, "vm", DegradationAction.REMAP, "detail")
        assert event in log.events
        assert event.ref_index == 5

    def test_counts_and_length(self):
        log = self._populated()
        assert len(log) == 3
        assert log.count(DegradationAction.ESCAPE) == 1
        assert log.count(DegradationAction.QUARANTINE) == 0

    def test_mode_transitions(self):
        log = self._populated()
        transitions = log.mode_transitions
        assert len(transitions) == 1
        assert transitions[0].action is DegradationAction.FALLBACK

    def test_total_cycle_cost(self):
        log = self._populated()
        assert log.total_cycle_cost == pytest.approx(600.0)

    def test_summary_mentions_every_action_taken(self):
        text = self._populated().summary()
        assert "escape" in text
        assert "shrink" in text
        assert "fallback" in text
