"""Tests for the escape filter (Section V)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.escape_filter import (
    DEFAULT_FILTER_BITS,
    DEFAULT_HASH_FUNCTIONS,
    EscapeFilter,
    H3Hash,
)

import random


class TestH3Hash:
    def test_deterministic(self):
        h1 = H3Hash(6, random.Random(42))
        h2 = H3Hash(6, random.Random(42))
        for key in (0, 1, 0xDEADBEEF, (1 << 36) - 1):
            assert h1(key) == h2(key)

    def test_range(self):
        h = H3Hash(6, random.Random(1))
        for key in range(1000):
            assert 0 <= h(key) < 64

    def test_zero_maps_to_zero(self):
        # GF(2)-linearity: the zero key XORs no rows.
        h = H3Hash(8, random.Random(7))
        assert h(0) == 0

    def test_linearity(self):
        # H3 is linear over GF(2): h(a ^ b) == h(a) ^ h(b).
        h = H3Hash(6, random.Random(3))
        for a, b in [(5, 9), (1234, 5678), (0xFFFF, 0xF0F0)]:
            assert h(a ^ b) == h(a) ^ h(b)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            H3Hash(0, random.Random(0))


class TestEscapeFilter:
    def test_default_geometry(self):
        f = EscapeFilter()
        assert f.total_bits == DEFAULT_FILTER_BITS
        assert f.num_hashes == DEFAULT_HASH_FUNCTIONS
        assert f.bank_bits == 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="not divisible"):
            EscapeFilter(total_bits=100, num_hashes=3)
        with pytest.raises(ValueError, match="power of two"):
            EscapeFilter(total_bits=96, num_hashes=2)

    def test_no_false_negatives(self):
        f = EscapeFilter()
        pages = [3, 77, 1 << 20, (1 << 36) - 1]
        for p in pages:
            f.insert(p)
        for p in pages:
            assert f.may_contain(p)

    def test_empty_filter_rejects_everything(self):
        f = EscapeFilter()
        assert not any(f.may_contain(p) for p in range(10_000))

    def test_false_positive_rate_with_16_pages(self):
        # The paper's design point: 256 bits / 4 hashes / 16 bad pages
        # keeps false positives rare enough to be performance-neutral.
        f = EscapeFilter()
        rng = random.Random(0)
        inserted = rng.sample(range(1 << 30), 16)
        for p in inserted:
            f.insert(p)
        rate = f.false_positive_rate(range(200_000))
        # Analytic expectation ~ (1 - (1 - 1/64)^16)^4 ~ 0.24%.
        assert rate < 0.02

    def test_is_false_positive(self):
        f = EscapeFilter()
        inserted = list(range(1000, 1016))  # 16 pages: FP rate ~0.24%
        for p in inserted:
            f.insert(p)
        assert not f.is_false_positive(inserted[0])  # genuinely inserted
        fp = next(
            p
            for p in range(1 << 20)
            if p not in f.inserted_pages and f.may_contain(p)
        )
        assert f.is_false_positive(fp)

    def test_inserted_pages_ground_truth(self):
        f = EscapeFilter()
        f.insert(1)
        f.insert(2)
        assert f.inserted_pages == frozenset({1, 2})
        assert len(f) == 2

    def test_clear(self):
        f = EscapeFilter()
        f.insert(99)
        f.clear()
        assert not f.may_contain(99)
        assert len(f) == 0

    def test_save_restore(self):
        # Section V: the filter is context state, saved with the
        # segment registers.
        f = EscapeFilter()
        f.insert(7)
        state = f.save()
        f.clear()
        f.insert(1234)
        f.restore(state)
        assert f.may_contain(7)
        assert 7 in f.inserted_pages
        assert 1234 not in f.inserted_pages

    def test_seed_changes_hashes(self):
        a = EscapeFilter(seed=1)
        b = EscapeFilter(seed=2)
        a.insert(123456)
        b.insert(123456)
        assert a.save()[0] != b.save()[0]

    @settings(max_examples=50)
    @given(st.sets(st.integers(min_value=0, max_value=(1 << 36) - 1), max_size=32))
    def test_membership_superset_invariant(self, pages):
        f = EscapeFilter()
        for p in pages:
            f.insert(p)
        assert all(f.may_contain(p) for p in pages)

    @settings(max_examples=20)
    @given(
        st.sets(st.integers(min_value=0, max_value=(1 << 36) - 1), max_size=16),
        st.integers(min_value=0, max_value=(1 << 36) - 1),
    )
    def test_save_restore_identity(self, pages, probe):
        f = EscapeFilter()
        for p in pages:
            f.insert(p)
        before = f.may_contain(probe)
        state = f.save()
        f.clear()
        f.restore(state)
        assert f.may_contain(probe) == before
