"""Tests for the dedicated-nested-TLB walker option (ablation hook)."""

import itertools

from repro.core.address import BASE_PAGE_SIZE
from repro.core.costs import DEFAULT_COSTS
from repro.core.walker import NestedWalker
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import TLBHierarchy
from repro.tlb.pwc import NestedTLB


def machine(dedicated=None):
    guest_frames = itertools.count(0x100)
    host_frames = itertools.count(0x9000)
    guest = PageTable(lambda: next(guest_frames))
    nested = PageTable(lambda: next(host_frames))
    hierarchy = TLBHierarchy()
    walker = NestedWalker(
        guest, nested, DEFAULT_COSTS, hierarchy, dedicated_nested_tlb=dedicated
    )
    return guest, nested, hierarchy, walker


def map_2d(guest, nested, gva, gpa, hpa):
    guest.map(gva, gpa)
    nested.map(gpa, hpa)
    for frame in guest.node_frames:
        base = frame * BASE_PAGE_SIZE
        if not nested.is_mapped(base):
            nested.map(base, 0x100_0000_0000 + base)


class TestDedicatedNestedTlb:
    def test_translations_identical_either_way(self):
        shared = machine()
        dedicated = machine(NestedTLB())
        for m in (shared, dedicated):
            map_2d(m[0], m[1], 0x7000_0000, 0x2000_0000, 0x8000_0000)
        a = shared[3].walk(0x7000_0000)
        b = dedicated[3].walk(0x7000_0000)
        assert a.frame == b.frame

    def test_dedicated_keeps_l2_clean(self):
        ntlb = NestedTLB()
        guest, nested, hierarchy, walker = machine(ntlb)
        map_2d(guest, nested, 0x7000_0000, 0x2000_0000, 0x8000_0000)
        walker.walk(0x7000_0000)
        # No nested insertions hit the shared L2 array.
        assert hierarchy.nested_insertions == 0
        # The dedicated structure holds them instead.
        assert ntlb.lookup(0x2000_0000 // BASE_PAGE_SIZE) is not None

    def test_shared_mode_pollutes_l2(self):
        guest, nested, hierarchy, walker = machine()
        map_2d(guest, nested, 0x7000_0000, 0x2000_0000, 0x8000_0000)
        walker.walk(0x7000_0000)
        assert hierarchy.nested_insertions > 0

    def test_dedicated_hits_on_rewalk(self):
        ntlb = NestedTLB()
        guest, nested, hierarchy, walker = machine(ntlb)
        map_2d(guest, nested, 0x7000_0000, 0x2000_0000, 0x8000_0000)
        first = walker.walk(0x7000_0000)
        second = walker.walk(0x7000_0000)
        assert second.refs < first.refs or second.refs <= 1
        assert second.frame == first.frame
