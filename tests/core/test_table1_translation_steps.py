"""Table I verification: translation steps per segment-membership case.

Builds a small virtualized machine by hand with both segment register
sets programmed, places addresses in each of Table I's four categories
(Both / VMM only / Guest only / Neither), and asserts the exact walk
behaviour -- reference counts, base-bound checks, results -- per case.
"""

import itertools

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange, PageSize
from repro.core.costs import DEFAULT_COSTS
from repro.core.modes import TranslationMode
from repro.core.mmu import (
    CASE_BOTH,
    CASE_GUEST_ONLY,
    CASE_NEITHER,
    CASE_VMM_ONLY,
    MMU,
)
from repro.core.segments import SegmentRegisters
from repro.core.walker import NestedWalker
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import TLBHierarchy

GVA_BASE = 16 * GIB  # guest-segment-covered virtual range
GVA_PAGED = 32 * GIB  # guest-paged virtual range


class Machine:
    """A hand-wired Dual Direct machine with all four address cases."""

    def __init__(self):
        guest_frames = itertools.count(0x100)
        host_frames = itertools.count(0x9000)
        self.guest_table = PageTable(lambda: next(guest_frames))
        self.nested_table = PageTable(lambda: next(host_frames))

        # Guest segment: [16G, 16G+64M) -> gPA [4G, 4G+64M).
        self.guest_segment = SegmentRegisters.mapping(
            AddressRange.of_size(GVA_BASE, 64 * MIB), 4 * GIB
        )
        # VMM segment: gPA [4G, 4G+32M) -> hPA [1G, 1G+32M): covers only
        # HALF of the guest segment, so guest-covered addresses above it
        # are "Guest segment only".
        self.vmm_segment = SegmentRegisters.mapping(
            AddressRange.of_size(4 * GIB, 32 * MIB), 1 * GIB
        )
        self.hierarchy = TLBHierarchy()
        self.walker = NestedWalker(
            self.guest_table,
            self.nested_table,
            DEFAULT_COSTS,
            self.hierarchy,
            guest_segment=self.guest_segment,
            vmm_segment=self.vmm_segment,
        )
        self.mmu = MMU(
            TranslationMode.DUAL_DIRECT,
            self.hierarchy,
            self.walker,
            on_guest_fault=self._guest_fault,
            on_nested_fault=self._nested_fault,
        )

    def _guest_fault(self, gva: int) -> None:
        page = gva & ~0xFFF
        # Paged guest memory maps to gPAs *outside* the VMM segment.
        gpa = 6 * GIB + (page - GVA_PAGED)
        self.guest_table.map(page, gpa, PageSize.SIZE_4K)

    def _nested_fault(self, gpa: int) -> None:
        page = gpa & ~0xFFF
        self.nested_table.map(page, 0x200_0000_0000 + page, PageSize.SIZE_4K)


@pytest.fixture
def machine():
    return Machine()


class TestCaseBoth:
    """gVA in guest segment, computed gPA in VMM segment: the 0D walk."""

    def test_zero_walks_two_adds(self, machine):
        va = GVA_BASE + 5 * BASE_PAGE_SIZE + 77
        frame = machine.mmu.access(va)
        c = machine.mmu.counters
        assert c.walks == 0
        assert c.dual_direct_hits == 1
        assert c.walks_by_case[CASE_BOTH] == 1
        # hPA = gVA + OFFSET_G + OFFSET_V.
        gpa = machine.guest_segment.translate(va)
        hpa = machine.vmm_segment.translate(gpa)
        assert frame == hpa // BASE_PAGE_SIZE

    def test_no_l2_probe(self, machine):
        machine.mmu.access(GVA_BASE + 123)
        assert machine.hierarchy.l2_stats.accesses == 0

    def test_l1_entry_installed(self, machine):
        va = GVA_BASE + 9 * BASE_PAGE_SIZE
        machine.mmu.access(va)
        assert machine.mmu.access(va + 5) == machine.mmu.access(va)
        assert machine.mmu.counters.l1_hits == 2

    def test_zero_translation_cycles(self, machine):
        machine.mmu.access(GVA_BASE)
        assert machine.mmu.counters.translation_cycles == 0.0


class TestCaseGuestOnly:
    """gVA in guest segment, gPA beyond the VMM segment: 1 add + nested walk."""

    def test_one_calculation_plus_nested_walk(self, machine):
        # 48 MiB into the guest segment: past the 32 MiB VMM segment.
        va = GVA_BASE + 48 * MIB
        frame = machine.mmu.access(va)
        c = machine.mmu.counters
        assert c.walks == 1
        assert c.walks_by_case[CASE_GUEST_ONLY] == 1
        gpa = machine.guest_segment.translate(va)
        assert frame == machine.nested_table.translate(gpa) // BASE_PAGE_SIZE

    def test_reference_count_is_nested_walk_only(self, machine):
        va = GVA_BASE + 48 * MIB
        machine.mmu.access(va)
        # Cold caches would show 4 references; the fault handler's
        # aborted attempts may warm them, so bound from above.
        assert 1 <= machine.mmu.counters.walk_refs <= 4

    def test_guest_dimension_never_walked(self, machine):
        va = GVA_BASE + 40 * MIB
        machine.mmu.access(va)
        # Nothing was ever installed in the guest page table for the
        # segment-covered range.
        assert machine.guest_table.lookup(va) is None


class TestCaseVmmOnly:
    """gVA paged, all gPAs inside the VMM segment."""

    @pytest.fixture
    def vmm_only_machine(self):
        m = Machine()

        # Remap guest faults so paged gVAs land INSIDE the VMM segment,
        # and allocate guest PT nodes inside it too.
        def guest_fault(gva: int) -> None:
            page = gva & ~0xFFF
            gpa = 4 * GIB + 16 * MIB + (page - GVA_PAGED)
            m.guest_table.map(page, gpa, PageSize.SIZE_4K)

        m.mmu.on_guest_fault = guest_fault
        # Rebuild the guest table with node frames inside the VMM
        # segment's gPA range (Section III.B's requirement).
        node_frames = itertools.count((4 * GIB + 24 * MIB) // BASE_PAGE_SIZE)
        m.guest_table = PageTable(lambda: next(node_frames))
        m.walker.guest_table = m.guest_table
        return m

    def test_guest_walk_with_segment_resolved_pointers(self, vmm_only_machine):
        m = vmm_only_machine
        va = GVA_PAGED + 3 * BASE_PAGE_SIZE + 9
        frame = m.mmu.access(va)
        c = m.mmu.counters
        assert c.walks == 1
        assert c.walks_by_case[CASE_VMM_ONLY] == 1
        # Result matches composing the page table with the VMM segment.
        gpa = m.guest_table.translate(va)
        assert frame == m.vmm_segment.translate(gpa) // BASE_PAGE_SIZE

    def test_no_nested_table_entries_created(self, vmm_only_machine):
        m = vmm_only_machine
        m.mmu.access(GVA_PAGED + 5 * BASE_PAGE_SIZE)
        assert m.nested_table.leaf_count() == 0

    def test_delta_vd_checks(self, vmm_only_machine):
        # Up to 5 base-bound checks per walk (4 PTE pointers + final),
        # fewer when the PWC skips upper levels; plus the guest-segment
        # check and the Dual Direct fast-path check.
        m = vmm_only_machine
        m.mmu.access(GVA_PAGED + 7 * BASE_PAGE_SIZE)
        assert 2 <= m.mmu.counters.checks <= 7


class TestCaseNeither:
    """gVA paged, gPAs outside the VMM segment: the full 2D walk."""

    def test_full_2d_walk(self, machine):
        va = GVA_PAGED + 11 * BASE_PAGE_SIZE
        frame = machine.mmu.access(va)
        c = machine.mmu.counters
        assert c.walks == 1
        assert c.walks_by_case[CASE_NEITHER] == 1
        gpa = machine.guest_table.translate(va)
        assert frame == machine.nested_table.translate(gpa) // BASE_PAGE_SIZE

    def test_neither_is_most_expensive(self, machine):
        va_both = GVA_BASE + BASE_PAGE_SIZE
        va_neither = GVA_PAGED + BASE_PAGE_SIZE
        machine.mmu.access(va_both)
        cycles_both = machine.mmu.counters.translation_cycles
        machine.mmu.access(va_neither)
        cycles_neither = machine.mmu.counters.translation_cycles - cycles_both
        assert cycles_neither > cycles_both


class TestTlbPaths:
    def test_l2_hit_inserts_l1(self, machine):
        va = GVA_PAGED + 2 * BASE_PAGE_SIZE
        machine.mmu.access(va)  # walk, installs L1 + L2
        # Evict from tiny L1 by touching many other pages.
        for i in range(100):
            machine.mmu.access(GVA_PAGED + (50 + i) * BASE_PAGE_SIZE)
        before = machine.mmu.counters.l2_hits
        machine.mmu.access(va)
        # Either still in L1 (unlikely) or found in L2.
        assert (
            machine.mmu.counters.l2_hits == before + 1
            or machine.mmu.counters.l1_hits > 0
        )

    def test_translation_consistent_across_paths(self, machine):
        va = GVA_BASE + 17 * BASE_PAGE_SIZE + 3
        first = machine.mmu.access(va)
        second = machine.mmu.access(va)  # L1 hit
        machine.mmu.flush_tlbs()
        third = machine.mmu.access(va)  # fast path again
        assert first == second == third
