"""Tests for the cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costs import DEFAULT_COSTS, CacheLatencies, CostModel


class TestCacheLatencies:
    def test_expected_cycles_are_blended(self):
        lat = CacheLatencies()
        for depth in range(4):
            expected = lat.expected_cycles(depth)
            assert lat.l2_cycles <= expected <= lat.dram_cycles

    def test_deeper_levels_cost_more(self):
        # PT leaves have the largest working set, so the lowest cache
        # residency and the highest expected latency.
        lat = CacheLatencies()
        costs = [lat.expected_cycles(d) for d in range(4)]
        assert costs == sorted(costs)

    def test_custom_residency(self):
        lat = CacheLatencies(residency=((1.0, 0.0),) * 4)
        assert lat.expected_cycles(3) == lat.l2_cycles

    @given(st.integers(min_value=0, max_value=3))
    def test_probabilities_bounded(self, depth):
        lat = CacheLatencies()
        l2_p, llc_p = lat.residency[depth]
        assert 0 <= l2_p <= 1 and 0 <= llc_p <= 1 and l2_p + llc_p <= 1


class TestCostModel:
    def test_defaults_present(self):
        assert DEFAULT_COSTS.base_bound_check_cycles == 1  # the paper's Delta
        assert DEFAULT_COSTS.vm_exit_cycles > 100
        assert DEFAULT_COSTS.l2_tlb_probe_cycles > 0

    def test_pte_access_delegates(self):
        model = CostModel()
        for depth in range(4):
            assert model.pte_access_cycles(depth) == model.cache.expected_cycles(depth)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.vm_exit_cycles = 1  # type: ignore[misc]
