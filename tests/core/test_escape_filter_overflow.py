"""Tests for the escape filter's modelled capacity limit."""

import pytest

from repro.core.escape_filter import EscapeFilter
from repro.errors import EscapeFilterFullError


class TestCapacity:
    def test_unlimited_by_default(self):
        filt = EscapeFilter()
        for page in range(500):
            filt.insert(page)
        assert not filt.is_full
        assert len(filt) == 500

    def test_fills_at_capacity(self):
        filt = EscapeFilter(capacity=3)
        for page in (10, 20, 30):
            filt.insert(page)
        assert filt.is_full
        with pytest.raises(EscapeFilterFullError):
            filt.insert(40)
        assert len(filt) == 3

    def test_reinserting_a_member_never_overflows(self):
        filt = EscapeFilter(capacity=2)
        filt.insert(1)
        filt.insert(2)
        filt.insert(1)  # already present: no new state, no error
        assert len(filt) == 2

    def test_failed_insert_leaves_filter_unchanged(self):
        filt = EscapeFilter(capacity=1)
        filt.insert(7)
        with pytest.raises(EscapeFilterFullError):
            filt.insert(8)
        assert filt.may_contain(7)
        assert 8 not in filt.inserted_pages

    def test_zero_capacity_rejects_everything(self):
        filt = EscapeFilter(capacity=0)
        assert filt.is_full
        with pytest.raises(EscapeFilterFullError):
            filt.insert(1)

    def test_capacity_retrofit_on_live_filter(self):
        # The injector caps a filter that already has members.
        filt = EscapeFilter()
        filt.insert(1)
        filt.insert(2)
        filt.capacity = len(filt)
        assert filt.is_full
        filt.insert(2)  # members still fine
        with pytest.raises(EscapeFilterFullError):
            filt.insert(3)

    def test_clear_resets_occupancy(self):
        filt = EscapeFilter(capacity=1)
        filt.insert(5)
        filt.clear()
        assert not filt.is_full
        filt.insert(6)
