"""Tests for the native and nested page walkers."""

import itertools

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange, PageSize
from repro.core.costs import DEFAULT_COSTS
from repro.core.escape_filter import EscapeFilter
from repro.core.segments import SegmentRegisters
from repro.core.walker import (
    DirectSegmentWalker,
    NativeWalker,
    NestedWalker,
    TranslationFault,
)
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import TLBHierarchy


def make_table(start=0x100):
    counter = itertools.count(start)
    return PageTable(lambda: next(counter))


class TestNativeWalker:
    def test_cold_4k_walk_costs_4_refs(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        walker = NativeWalker(table, DEFAULT_COSTS)
        outcome = walker.walk(0x1000)
        assert outcome.refs == 4
        assert outcome.raw_refs == 4
        assert outcome.frame == 0x5
        assert outcome.cycles > 0

    def test_warm_walk_skips_upper_levels(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        table.map(0x2000, 0x6000)
        walker = NativeWalker(table, DEFAULT_COSTS)
        walker.walk(0x1000)
        outcome = walker.walk(0x2000)  # same PT node: PDE cached
        assert outcome.refs == 1
        assert outcome.raw_refs == 4

    def test_2m_walk_costs_3_refs_cold(self):
        table = make_table()
        table.map(0, 0, PageSize.SIZE_2M)
        walker = NativeWalker(table, DEFAULT_COSTS)
        outcome = walker.walk(0x1234)
        assert outcome.refs == 3
        assert outcome.page_size is PageSize.SIZE_2M

    def test_unmapped_raises(self):
        walker = NativeWalker(make_table(), DEFAULT_COSTS)
        with pytest.raises(TranslationFault) as info:
            walker.walk(0x1000)
        assert info.value.dimension == "native"

    def test_pwc_never_skips_the_leaf(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        walker = NativeWalker(table, DEFAULT_COSTS)
        walker.walk(0x1000)
        outcome = walker.walk(0x1000)  # fully cached prefix
        assert outcome.refs >= 1  # leaf PTE always loaded


class TestDirectSegmentWalker:
    def test_carries_segment_state(self):
        table = make_table()
        segment = SegmentRegisters(base=0, limit=GIB, offset=GIB)
        escape = EscapeFilter()
        walker = DirectSegmentWalker(table, DEFAULT_COSTS, segment, escape)
        assert walker.segment is segment
        assert walker.escape_filter is escape

    def test_walks_like_native(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        walker = DirectSegmentWalker(
            table, DEFAULT_COSTS, SegmentRegisters.disabled()
        )
        assert walker.walk(0x1000).frame == 0x5


class TestNestedWalkerBaseline:
    """Base virtualized: both segments disabled, the pure 2D walk."""

    def _machine(self):
        guest = make_table(0x100)
        nested = make_table(0x9000)
        hierarchy = TLBHierarchy()
        walker = NestedWalker(guest, nested, DEFAULT_COSTS, hierarchy)
        return guest, nested, walker

    def _map_all(self, guest, nested, gva, gpa, hpa):
        guest.map(gva, gpa)
        # Nested mappings for: the final gPA and every guest node frame.
        nested.map(gpa, hpa)
        for frame in guest.node_frames:
            base = frame * BASE_PAGE_SIZE
            if not nested.is_mapped(base):
                nested.map(base, 0x100_0000_0000 + base)

    def test_cold_2d_walk_is_24_raw_refs(self):
        guest, nested, walker = self._machine()
        self._map_all(guest, nested, 0x10_0000_0000, 0x2000_0000, 0x8000_0000)
        outcome = walker.walk(0x10_0000_0000)
        # Figure 2's arithmetic: 5 * 4 + 4 = 24 references before MMU
        # caches.  Within a single walk the nested PWC already absorbs
        # repeated upper-level nested loads, so performed refs are fewer
        # but still far above a native walk's 4.
        assert outcome.raw_refs == 24
        assert 8 <= outcome.refs <= 24
        assert outcome.frame == 0x8000_0000 // BASE_PAGE_SIZE

    def test_warm_2d_walk_is_much_cheaper(self):
        guest, nested, walker = self._machine()
        self._map_all(guest, nested, 0x10_0000_0000, 0x2000_0000, 0x8000_0000)
        self._map_all(guest, nested, 0x10_0000_1000, 0x2000_1000, 0x8000_1000)
        walker.walk(0x10_0000_0000)
        outcome = walker.walk(0x10_0000_1000)
        assert outcome.refs <= 2

    def test_guest_fault_dimension(self):
        guest, nested, walker = self._machine()
        with pytest.raises(TranslationFault) as info:
            walker.walk(0x1234_5000)
        assert info.value.dimension == "guest"

    def test_nested_fault_dimension(self):
        guest, nested, walker = self._machine()
        guest.map(0x1000, 0x2000_0000)
        with pytest.raises(TranslationFault) as info:
            walker.walk(0x1000)
        assert info.value.dimension == "nested"

    def test_no_segments_no_classification(self):
        guest, nested, walker = self._machine()
        self._map_all(guest, nested, 0x1000, 0x2000_0000, 0x8000_0000)
        outcome = walker.walk(0x1000)
        assert not outcome.guest_segment_used
        assert not outcome.vmm_segment_used
        assert outcome.checks == 0


class TestVmmDirectWalker:
    """VMM segment only: guest paging, nested dimension flattened."""

    def _machine(self):
        # Guest page-table nodes inside the VMM segment's gPA range.
        guest = make_table((4 * GIB) // BASE_PAGE_SIZE)
        nested = make_table(0x9000)
        hierarchy = TLBHierarchy()
        vmm_segment = SegmentRegisters.mapping(
            AddressRange.of_size(4 * GIB, 256 * MIB), 1 * GIB
        )
        walker = NestedWalker(
            guest, nested, DEFAULT_COSTS, hierarchy, vmm_segment=vmm_segment
        )
        return guest, walker, vmm_segment

    def test_walk_is_guest_refs_plus_checks(self):
        guest, walker, seg = self._machine()
        gpa = 4 * GIB + 64 * MIB
        guest.map(0x1000, gpa)
        outcome = walker.walk(0x1000)
        assert outcome.raw_refs == 4  # guest dimension only
        assert outcome.refs == 4
        assert outcome.checks == 5  # Delta_VD: 4 pointers + final gPA
        assert outcome.vmm_segment_used
        assert not outcome.guest_segment_used
        assert outcome.frame == seg.translate(gpa) // BASE_PAGE_SIZE

    def test_escaped_gpa_falls_back_to_nested_paging(self):
        guest, walker, seg = self._machine()
        gpa = 4 * GIB + 8 * MIB
        guest.map(0x1000, gpa)
        escape = EscapeFilter()
        escape.insert(gpa // BASE_PAGE_SIZE)
        walker.vmm_escape_filter = escape
        # The escaped page needs a conventional nested mapping.
        walker.nested_table.map(gpa, 0x7000_0000)
        outcome = walker.walk(0x1000)
        assert outcome.frame == 0x7000_0000 // BASE_PAGE_SIZE
        assert not outcome.vmm_segment_used


class TestGuestDirectWalker:
    """Guest segment only: first dimension flattened, nested paging."""

    def _machine(self):
        guest = make_table(0x100)
        nested = make_table(0x9000)
        hierarchy = TLBHierarchy()
        guest_segment = SegmentRegisters.mapping(
            AddressRange.of_size(16 * GIB, 64 * MIB), 4 * GIB
        )
        walker = NestedWalker(
            guest, nested, DEFAULT_COSTS, hierarchy, guest_segment=guest_segment
        )
        return nested, walker, guest_segment

    def test_walk_is_one_add_plus_nested_walk(self):
        nested, walker, seg = self._machine()
        va = 16 * GIB + 4096 * 3
        gpa = seg.translate(va)
        nested.map(gpa & ~0xFFF, 0x5555_0000)
        outcome = walker.walk(va)
        assert outcome.checks == 1  # Delta_GD
        assert outcome.raw_refs == 4  # nested walk only
        assert outcome.guest_segment_used
        assert not outcome.vmm_segment_used
        assert outcome.frame == 0x5555_0000 // BASE_PAGE_SIZE

    def test_outside_segment_needs_guest_table(self):
        nested, walker, seg = self._machine()
        with pytest.raises(TranslationFault) as info:
            walker.walk(1 * GIB)  # below the segment, unmapped
        assert info.value.dimension == "guest"

    def test_segment_entries_install_at_4k(self):
        nested, walker, seg = self._machine()
        va = 16 * GIB
        nested.map(4 * GIB, 0x5555_0000)
        outcome = walker.walk(va)
        assert outcome.page_size is PageSize.SIZE_4K


class TestEffectiveEntrySize:
    def test_entry_size_is_min_of_dimensions(self):
        # 2M guest leaf backed by 4K nested pages: the gVA -> hPA map is
        # only linear at 4K, so the TLB entry must be 4K.
        guest = make_table(0x100)
        nested = make_table(0x9000)
        walker = NestedWalker(guest, nested, DEFAULT_COSTS, TLBHierarchy())
        guest.map(0, 0, PageSize.SIZE_2M)
        for gppn in range(3):  # nested 4K pages for the region we touch
            nested.map(gppn * BASE_PAGE_SIZE, (100 + gppn) * BASE_PAGE_SIZE)
        for frame in guest.node_frames:
            nested.map(frame * BASE_PAGE_SIZE, (0x8000 + frame) * BASE_PAGE_SIZE)
        outcome = walker.walk(0)
        assert outcome.page_size is PageSize.SIZE_4K

    def test_matching_large_pages_keep_large_entry(self):
        guest = make_table(0x100)
        nested = make_table(0x9000)
        walker = NestedWalker(guest, nested, DEFAULT_COSTS, TLBHierarchy())
        guest.map(0, 2 * MIB, PageSize.SIZE_2M)
        nested.map(2 * MIB, 8 * MIB, PageSize.SIZE_2M)
        for frame in guest.node_frames:
            nested.map(frame * BASE_PAGE_SIZE, (0x8000 + frame) * BASE_PAGE_SIZE)
        outcome = walker.walk(0x1234)
        assert outcome.page_size is PageSize.SIZE_2M
