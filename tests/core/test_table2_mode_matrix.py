"""Table II verification: the mode trade-off matrix and walk arithmetic."""

import pytest

from repro.core.address import PageSize
from repro.core.modes import (
    MODE_PROPERTIES,
    TranslationMode,
    base_bound_checks,
    walk_references,
)


class TestTable2Matrix:
    """Assert the exact rows of Table II."""

    def test_walk_dimensions(self):
        assert MODE_PROPERTIES[TranslationMode.BASE_VIRTUALIZED].walk_dimensions == 2
        assert MODE_PROPERTIES[TranslationMode.DUAL_DIRECT].walk_dimensions == 0
        assert MODE_PROPERTIES[TranslationMode.VMM_DIRECT].walk_dimensions == 1
        assert MODE_PROPERTIES[TranslationMode.GUEST_DIRECT].walk_dimensions == 1

    def test_memory_accesses_row(self):
        accesses = {
            mode: props.walk_memory_accesses
            for mode, props in MODE_PROPERTIES.items()
        }
        assert accesses[TranslationMode.BASE_VIRTUALIZED] == 24
        assert accesses[TranslationMode.DUAL_DIRECT] == 0
        assert accesses[TranslationMode.VMM_DIRECT] == 4
        assert accesses[TranslationMode.GUEST_DIRECT] == 4

    def test_base_bound_checks_row(self):
        checks = {
            mode: props.base_bound_checks for mode, props in MODE_PROPERTIES.items()
        }
        assert checks[TranslationMode.BASE_VIRTUALIZED] == 0
        assert checks[TranslationMode.DUAL_DIRECT] == 1
        assert checks[TranslationMode.VMM_DIRECT] == 5
        assert checks[TranslationMode.GUEST_DIRECT] == 1

    def test_modification_rows(self):
        base = MODE_PROPERTIES[TranslationMode.BASE_VIRTUALIZED]
        assert not base.guest_os_modifications and not base.vmm_modifications
        dd = MODE_PROPERTIES[TranslationMode.DUAL_DIRECT]
        assert dd.guest_os_modifications and dd.vmm_modifications
        vd = MODE_PROPERTIES[TranslationMode.VMM_DIRECT]
        assert not vd.guest_os_modifications and vd.vmm_modifications
        gd = MODE_PROPERTIES[TranslationMode.GUEST_DIRECT]
        assert gd.guest_os_modifications and not gd.vmm_modifications

    def test_application_category_row(self):
        assert MODE_PROPERTIES[TranslationMode.BASE_VIRTUALIZED].application_category == "any"
        assert MODE_PROPERTIES[TranslationMode.VMM_DIRECT].application_category == "any"
        assert (
            MODE_PROPERTIES[TranslationMode.DUAL_DIRECT].application_category
            == "big memory"
        )
        assert (
            MODE_PROPERTIES[TranslationMode.GUEST_DIRECT].application_category
            == "big memory"
        )

    def test_memory_management_rows(self):
        base = MODE_PROPERTIES[TranslationMode.BASE_VIRTUALIZED]
        assert base.page_sharing == "unrestricted"
        assert base.ballooning == "unrestricted"
        gd = MODE_PROPERTIES[TranslationMode.GUEST_DIRECT]
        assert gd.page_sharing == "unrestricted"
        assert gd.vmm_swapping == "unrestricted"
        assert gd.guest_swapping == "limited"
        vd = MODE_PROPERTIES[TranslationMode.VMM_DIRECT]
        assert vd.page_sharing == "limited"
        assert vd.guest_swapping == "unrestricted"
        dd = MODE_PROPERTIES[TranslationMode.DUAL_DIRECT]
        assert dd.page_sharing == "limited"
        assert dd.guest_swapping == "limited"


class TestWalkReferences:
    """The Figure 2 reference-count arithmetic, generalized."""

    def test_paper_headline_numbers(self):
        assert walk_references(TranslationMode.NATIVE) == 4
        assert walk_references(TranslationMode.BASE_VIRTUALIZED) == 24
        assert walk_references(TranslationMode.VMM_DIRECT) == 4
        assert walk_references(TranslationMode.GUEST_DIRECT) == 4
        assert walk_references(TranslationMode.DUAL_DIRECT) == 0

    def test_large_guest_pages_shrink_the_walk(self):
        assert walk_references(TranslationMode.NATIVE, PageSize.SIZE_2M) == 3
        assert walk_references(TranslationMode.NATIVE, PageSize.SIZE_1G) == 2
        # 2M guest over 4K nested: 3 * (4 + 1) + 4 = 19.
        assert (
            walk_references(
                TranslationMode.BASE_VIRTUALIZED, PageSize.SIZE_2M, PageSize.SIZE_4K
            )
            == 19
        )
        # 4K guest over 2M nested: 4 * (3 + 1) + 3 = 19.
        assert (
            walk_references(
                TranslationMode.BASE_VIRTUALIZED, PageSize.SIZE_4K, PageSize.SIZE_2M
            )
            == 19
        )
        # 1G both: 2 * 3 + 2 = 8.
        assert (
            walk_references(
                TranslationMode.BASE_VIRTUALIZED, PageSize.SIZE_1G, PageSize.SIZE_1G
            )
            == 8
        )

    def test_vmm_direct_tracks_guest_levels(self):
        assert walk_references(TranslationMode.VMM_DIRECT, PageSize.SIZE_2M) == 3

    def test_guest_direct_tracks_nested_levels(self):
        assert (
            walk_references(
                TranslationMode.GUEST_DIRECT, PageSize.SIZE_4K, PageSize.SIZE_2M
            )
            == 3
        )


class TestBaseBoundChecks:
    def test_paper_deltas(self):
        # Delta_VD = 5 and Delta_GD = 1 (Section VII).
        assert base_bound_checks(TranslationMode.VMM_DIRECT) == 5
        assert base_bound_checks(TranslationMode.GUEST_DIRECT) == 1
        assert base_bound_checks(TranslationMode.DUAL_DIRECT) == 1
        assert base_bound_checks(TranslationMode.BASE_VIRTUALIZED) == 0
        assert base_bound_checks(TranslationMode.NATIVE) == 0

    def test_vmm_direct_with_large_guest_pages(self):
        # 2M guest walk: 3 PTE pointers + final gPA = 4 checks.
        assert base_bound_checks(TranslationMode.VMM_DIRECT, PageSize.SIZE_2M) == 4


class TestModeFlags:
    def test_virtualized_flags(self):
        assert not TranslationMode.NATIVE.virtualized
        assert not TranslationMode.NATIVE_DIRECT_SEGMENT.virtualized
        for mode in (
            TranslationMode.BASE_VIRTUALIZED,
            TranslationMode.DUAL_DIRECT,
            TranslationMode.VMM_DIRECT,
            TranslationMode.GUEST_DIRECT,
        ):
            assert mode.virtualized

    def test_segment_usage_flags(self):
        assert TranslationMode.DUAL_DIRECT.uses_guest_segment
        assert TranslationMode.DUAL_DIRECT.uses_vmm_segment
        assert TranslationMode.VMM_DIRECT.uses_vmm_segment
        assert not TranslationMode.VMM_DIRECT.uses_guest_segment
        assert TranslationMode.GUEST_DIRECT.uses_guest_segment
        assert not TranslationMode.GUEST_DIRECT.uses_vmm_segment
        assert TranslationMode.NATIVE_DIRECT_SEGMENT.uses_guest_segment

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            walk_references("bogus")  # type: ignore[arg-type]
