"""Tests for x86-64 address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.address import (
    ADDRESS_SPACE_SIZE,
    BASE_PAGE_SIZE,
    GIB,
    KIB,
    MIB,
    AddressRange,
    PageSize,
    align_down,
    align_up,
    check_canonical,
    format_size,
    is_aligned,
    is_canonical,
    page_base,
    page_number,
    page_offset,
    radix_index,
    radix_indices,
    vpn_to_address,
)


class TestPageSize:
    def test_values_are_bytes(self):
        assert int(PageSize.SIZE_4K) == 4 * KIB
        assert int(PageSize.SIZE_2M) == 2 * MIB
        assert int(PageSize.SIZE_1G) == 1 * GIB

    def test_bits(self):
        assert PageSize.SIZE_4K.bits == 12
        assert PageSize.SIZE_2M.bits == 21
        assert PageSize.SIZE_1G.bits == 30

    def test_levels_match_x86(self):
        assert PageSize.SIZE_4K.levels == 4
        assert PageSize.SIZE_2M.levels == 3
        assert PageSize.SIZE_1G.levels == 2

    def test_base_pages(self):
        assert PageSize.SIZE_4K.base_pages == 1
        assert PageSize.SIZE_2M.base_pages == 512
        assert PageSize.SIZE_1G.base_pages == 512 * 512

    def test_labels_round_trip(self):
        for size in PageSize:
            assert PageSize.from_label(size.label) is size

    def test_from_label_case_insensitive(self):
        assert PageSize.from_label("2m") is PageSize.SIZE_2M

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown page size"):
            PageSize.from_label("3M")


class TestCanonical:
    def test_bounds(self):
        assert is_canonical(0)
        assert is_canonical(ADDRESS_SPACE_SIZE - 1)
        assert not is_canonical(ADDRESS_SPACE_SIZE)
        assert not is_canonical(-1)

    def test_check_returns_value(self):
        assert check_canonical(0x1234) == 0x1234

    def test_check_raises(self):
        with pytest.raises(ValueError, match="outside 48-bit"):
            check_canonical(1 << 48)


class TestPageArithmetic:
    def test_page_number_and_offset(self):
        address = 5 * BASE_PAGE_SIZE + 123
        assert page_number(address) == 5
        assert page_offset(address) == 123
        assert page_base(address) == 5 * BASE_PAGE_SIZE

    def test_large_page_number(self):
        address = 3 * GIB + 5
        assert page_number(address, PageSize.SIZE_1G) == 3
        assert page_offset(address, PageSize.SIZE_1G) == 5

    def test_align_up_down(self):
        assert align_up(1, PageSize.SIZE_4K) == 4096
        assert align_up(4096, PageSize.SIZE_4K) == 4096
        assert align_down(4097, PageSize.SIZE_4K) == 4096
        assert is_aligned(2 * MIB, PageSize.SIZE_2M)
        assert not is_aligned(2 * MIB + 8, PageSize.SIZE_2M)

    def test_vpn_round_trip(self):
        assert vpn_to_address(7) == 7 * 4096
        assert page_number(vpn_to_address(7)) == 7

    @given(st.integers(min_value=0, max_value=ADDRESS_SPACE_SIZE - 1))
    def test_split_recombines(self, address):
        for size in PageSize:
            assert (
                page_number(address, size) * int(size) + page_offset(address, size)
                == address
            )


class TestRadixIndices:
    def test_known_split(self):
        # Address with distinct 9-bit groups: PML4=1, PDPT=2, PD=3, PT=4.
        address = (1 << 39) | (2 << 30) | (3 << 21) | (4 << 12)
        assert radix_indices(address) == (1, 2, 3, 4)

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            radix_index(0, 4)
        with pytest.raises(ValueError):
            radix_index(0, -1)

    @given(st.integers(min_value=0, max_value=ADDRESS_SPACE_SIZE - 1))
    def test_indices_in_range(self, address):
        for index in radix_indices(address):
            assert 0 <= index < 512

    @given(st.integers(min_value=0, max_value=ADDRESS_SPACE_SIZE - 1))
    def test_indices_reconstruct_page(self, address):
        i0, i1, i2, i3 = radix_indices(address)
        rebuilt = (i0 << 39) | (i1 << 30) | (i2 << 21) | (i3 << 12)
        assert rebuilt == page_base(address)


class TestAddressRange:
    def test_contains_half_open(self):
        r = AddressRange(100, 200)
        assert 100 in r
        assert 199 in r
        assert 200 not in r
        assert 99 not in r

    def test_of_size(self):
        r = AddressRange.of_size(0x1000, 0x2000)
        assert r.start == 0x1000
        assert r.end == 0x3000
        assert r.size == 0x2000

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            AddressRange(10, 5)

    def test_overlap_and_intersection(self):
        a = AddressRange(0, 100)
        b = AddressRange(50, 150)
        c = AddressRange(100, 200)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: they only touch
        assert a.intersection(b) == AddressRange(50, 100)
        assert a.intersection(c) is None

    def test_contains_range(self):
        outer = AddressRange(0, 1000)
        assert outer.contains_range(AddressRange(0, 1000))
        assert outer.contains_range(AddressRange(10, 20))
        assert not outer.contains_range(AddressRange(10, 1001))

    def test_pages(self):
        r = AddressRange(4096, 3 * 4096 + 1)
        assert list(r.pages()) == [1, 2, 3]
        assert list(AddressRange(0, 0).pages()) == []

    def test_equality_and_hash(self):
        assert AddressRange(1, 2) == AddressRange(1, 2)
        assert hash(AddressRange(1, 2)) == hash(AddressRange(1, 2))
        assert AddressRange(1, 2) != AddressRange(1, 3)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_intersection_symmetric(self, s1, l1, s2, l2):
        a = AddressRange.of_size(s1, l1)
        b = AddressRange.of_size(s2, l2)
        assert a.intersection(b) == b.intersection(a)
        assert a.overlaps(b) == b.overlaps(a)


class TestFormatSize:
    def test_exact_units(self):
        assert format_size(256 * MIB) == "256MB"
        assert format_size(2 * GIB) == "2GB"
        assert format_size(512) == "512B"

    def test_fractional(self):
        assert format_size(int(1.5 * GIB)) == "1.5GB"
