"""Tests for the direct-segment register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.address import GIB, MIB, AddressRange
from repro.core.segments import SegmentFault, SegmentFile, SegmentRegisters


class TestSegmentRegisters:
    def test_disabled_encoding(self):
        regs = SegmentRegisters.disabled()
        assert not regs.enabled
        assert regs.size == 0
        assert not regs.covers(0)

    def test_base_equal_limit_disables(self):
        # The paper's trick: BASE == LIMIT nullifies a register set.
        regs = SegmentRegisters(base=GIB, limit=GIB, offset=123 * MIB)
        assert not regs.enabled

    def test_mapping_constructor(self):
        regs = SegmentRegisters.mapping(AddressRange(4 * GIB, 6 * GIB), 1 * GIB)
        assert regs.base == 4 * GIB
        assert regs.limit == 6 * GIB
        assert regs.offset == 1 * GIB - 4 * GIB

    def test_translate_by_addition(self):
        regs = SegmentRegisters(base=0x1000, limit=0x3000, offset=0x10000)
        assert regs.translate(0x1000) == 0x11000
        assert regs.translate(0x2FFF) == 0x12FFF

    def test_translate_outside_faults(self):
        regs = SegmentRegisters(base=0x1000, limit=0x3000, offset=0x10000)
        with pytest.raises(SegmentFault):
            regs.translate(0x3000)
        with pytest.raises(SegmentFault):
            regs.translate(0xFFF)

    def test_covers_is_half_open(self):
        regs = SegmentRegisters(base=100, limit=200, offset=0)
        assert regs.covers(100)
        assert regs.covers(199)
        assert not regs.covers(200)

    def test_negative_offset(self):
        # Physical range below the virtual range is legitimate.
        regs = SegmentRegisters.mapping(AddressRange(4 * GIB, 5 * GIB), 1 * GIB)
        assert regs.offset < 0
        assert regs.translate(4 * GIB) == 1 * GIB

    def test_rejects_inverted_limit(self):
        with pytest.raises(ValueError, match="LIMIT"):
            SegmentRegisters(base=100, limit=50, offset=0)

    def test_rejects_offset_below_zero(self):
        with pytest.raises(ValueError, match="below address zero"):
            SegmentRegisters(base=GIB, limit=2 * GIB, offset=-2 * GIB)

    def test_ranges(self):
        regs = SegmentRegisters.mapping(AddressRange(0x10000, 0x20000), 0x50000)
        assert regs.virtual_range == AddressRange(0x10000, 0x20000)
        assert regs.physical_range == AddressRange(0x50000, 0x60000)

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=1, max_value=2**30),
        st.integers(min_value=0, max_value=2**40),
    )
    def test_translation_preserves_offsets(self, base, size, phys):
        regs = SegmentRegisters.mapping(AddressRange.of_size(base, size), phys)
        for delta in (0, size // 2, size - 1):
            assert regs.translate(base + delta) == phys + delta

    @given(st.integers(min_value=0, max_value=2**40))
    def test_unchecked_matches_checked_inside(self, delta):
        regs = SegmentRegisters(base=0, limit=2**41, offset=2**20)
        assert regs.translate(delta) == regs.translate_unchecked(delta)


class TestSegmentFile:
    def test_all_disabled(self):
        sf = SegmentFile.all_disabled()
        assert not sf.guest.enabled
        assert not sf.vmm.enabled

    def test_save_restore_round_trip(self):
        sf = SegmentFile(
            guest=SegmentRegisters(0, 100, 5),
            vmm=SegmentRegisters(0, 200, 7),
        )
        saved = sf.save()
        sf.guest = SegmentRegisters.disabled()
        sf.vmm = SegmentRegisters.disabled()
        sf.restore(saved)
        assert sf.guest == SegmentRegisters(0, 100, 5)
        assert sf.vmm == SegmentRegisters(0, 200, 7)
