"""Tests for the MMU flow (native modes, counters, fault handling)."""

import itertools

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange, PageSize
from repro.core.costs import DEFAULT_COSTS
from repro.core.escape_filter import EscapeFilter
from repro.core.modes import TranslationMode
from repro.core.mmu import CASE_GUEST_ONLY, MMU, MMUCounters
from repro.core.segments import SegmentRegisters
from repro.core.walker import DirectSegmentWalker, NativeWalker, TranslationFault
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import TLBHierarchy


def native_machine(segment=None, escape=None):
    frames = itertools.count(0x1000)
    table = PageTable(lambda: next(frames))
    hierarchy = TLBHierarchy()
    if segment is not None:
        walker = DirectSegmentWalker(table, DEFAULT_COSTS, segment, escape)
        mode = TranslationMode.NATIVE_DIRECT_SEGMENT
    else:
        walker = NativeWalker(table, DEFAULT_COSTS)
        mode = TranslationMode.NATIVE

    def fault(va):
        page = va & ~0xFFF
        table.map(page, 0x40_0000_0000 + page)

    mmu = MMU(mode, hierarchy, walker, on_guest_fault=fault)
    return mmu, table


class TestNativeFlow:
    def test_miss_walk_then_hits(self):
        mmu, table = native_machine()
        va = 0x7000_1000
        frame = mmu.access(va)
        assert mmu.counters.walks == 1
        assert mmu.access(va) == frame
        assert mmu.counters.l1_hits == 1

    def test_l2_backs_up_l1(self):
        mmu, table = native_machine()
        # Fill well past L1 (64 entries) but within L2 (512).
        for i in range(200):
            mmu.access(0x7000_0000 + i * BASE_PAGE_SIZE)
        walks_before = mmu.counters.walks
        for i in range(200):
            mmu.access(0x7000_0000 + i * BASE_PAGE_SIZE)
        # Second pass served by L1+L2, almost no new walks.
        assert mmu.counters.walks - walks_before < 10

    def test_mode_walker_mismatch_rejected(self):
        frames = itertools.count(0x1000)
        table = PageTable(lambda: next(frames))
        walker = NativeWalker(table, DEFAULT_COSTS)
        with pytest.raises(ValueError, match="walker type"):
            MMU(TranslationMode.BASE_VIRTUALIZED, TLBHierarchy(), walker)

    def test_unhandled_fault_propagates(self):
        frames = itertools.count(0x1000)
        table = PageTable(lambda: next(frames))
        mmu = MMU(
            TranslationMode.NATIVE,
            TLBHierarchy(),
            NativeWalker(table, DEFAULT_COSTS),
        )
        with pytest.raises(TranslationFault):
            mmu.access(0x1234)

    def test_touch_does_not_count(self):
        mmu, table = native_machine()
        mmu.touch(0x7000_0000)
        fresh = MMUCounters()
        assert mmu.counters.accesses == fresh.accesses == 0

    def test_counters_reset(self):
        mmu, table = native_machine()
        mmu.access(0x7000_0000)
        mmu.counters.reset()
        assert mmu.counters.accesses == 0
        assert mmu.counters.walks == 0
        assert mmu.counters.walks_by_case[CASE_GUEST_ONLY] == 0


class TestDirectSegmentMode:
    SEG = SegmentRegisters.mapping(AddressRange.of_size(16 * GIB, 64 * MIB), 1 * GIB)

    def test_covered_address_costs_nothing(self):
        mmu, table = native_machine(segment=self.SEG)
        va = 16 * GIB + 5 * BASE_PAGE_SIZE
        frame = mmu.access(va)
        assert frame == self.SEG.translate(va) // BASE_PAGE_SIZE
        assert mmu.counters.walks == 0
        assert mmu.counters.segment_l2_parallel_hits == 1
        assert mmu.counters.translation_cycles == 0.0

    def test_uncovered_address_walks(self):
        mmu, table = native_machine(segment=self.SEG)
        mmu.access(0x7000_0000)
        assert mmu.counters.walks == 1

    def test_escaped_page_falls_back_to_paging(self):
        escape = EscapeFilter()
        victim_page = (16 * GIB) // BASE_PAGE_SIZE + 3
        escape.insert(victim_page)
        mmu, table = native_machine(segment=self.SEG, escape=escape)
        va = victim_page * BASE_PAGE_SIZE
        frame = mmu.access(va)
        # Served by the paging path (fault handler's mapping), not the
        # segment computation.
        assert frame == (0x40_0000_0000 + va) // BASE_PAGE_SIZE
        assert mmu.counters.walks == 1

    def test_classification_counts_ds_hits(self):
        mmu, table = native_machine(segment=self.SEG)
        mmu.access(16 * GIB)
        assert mmu.counters.miss_fraction(CASE_GUEST_ONLY) == 1.0


class TestCounters:
    def test_cycles_per_walk(self):
        c = MMUCounters()
        assert c.cycles_per_walk == 0.0
        c.walks = 4
        c.walk_cycles = 100.0
        assert c.cycles_per_walk == 25.0

    def test_classified_events(self):
        c = MMUCounters()
        c.walks = 3
        c.dual_direct_hits = 2
        c.segment_l2_parallel_hits = 1
        assert c.classified_events == 6

    def test_miss_fraction_empty(self):
        assert MMUCounters().miss_fraction(CASE_GUEST_ONLY) == 0.0

    def test_translation_cycles_sums_terms(self):
        c = MMUCounters()
        c.walk_cycles = 10.0
        c.check_cycles = 2.0
        assert c.translation_cycles == 12.0


class TestFlush:
    def test_flush_tlbs_forces_rewalk(self):
        mmu, table = native_machine()
        mmu.access(0x7000_0000)
        mmu.flush_tlbs()
        mmu.access(0x7000_0000)
        assert mmu.counters.walks == 2
