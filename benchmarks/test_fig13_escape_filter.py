"""Benchmark E7: Figure 13 -- escape-filter resilience to bad pages.

Regenerates the normalized-execution-time series (1..16 bad pages,
multiple random fault sets, 95% CIs) and asserts the paper's claim:
Dual Direct retains almost all its benefit even with 16 hard faults.
"""

import pytest

from repro.experiments import figure13

#: Scaled-down defaults: the full paper protocol (30 trials, 5 counts,
#: 3 workloads) is available via repro.experiments figure13 --full runs.
BAD_COUNTS = (1, 4, 16)
TRIALS = 5
WORKLOADS = ("graph500", "gups")


@pytest.fixture(scope="module")
def result():
    return figure13.run(
        trace_length=20_000,
        workloads=WORKLOADS,
        bad_counts=BAD_COUNTS,
        trials=TRIALS,
    )


def test_regenerate_figure13(benchmark):
    out = benchmark.pedantic(
        figure13.run,
        kwargs=dict(
            trace_length=8_000,
            workloads=("graph500",),
            bad_counts=(16,),
            trials=2,
        ),
        rounds=1,
        iterations=1,
    )
    assert out.points


class TestPaperShape:
    def test_print_figure(self, result):
        print()
        print(figure13.format_figure(result))

    def test_overhead_negligible_with_16_faults(self, result):
        # Paper: execution impact < 0.06% (GUPS 0.5%) with 16 faults.
        for workload in WORKLOADS:
            point = result.point(workload, 16)
            budget = 1.01 if workload == "gups" else 1.005
            assert point.mean < budget, (
                f"{workload}: {point.mean:.5f} normalized time with 16 bad pages"
            )

    def test_impact_never_decreases_much_below_one(self, result):
        # Sanity: escaping pages cannot speed execution up materially.
        for point in result.points:
            assert point.mean > 0.995

    def test_confidence_intervals_are_tight(self, result):
        for point in result.points:
            assert point.ci95 < 0.02

    def test_more_faults_never_cheaper(self, result):
        for workload in WORKLOADS:
            means = [result.point(workload, n).mean for n in BAD_COUNTS]
            # Allow noise, but 16 faults must not beat 1 fault by more
            # than the CI width.
            assert means[-1] >= means[0] - 0.005
