"""Benchmark S3: Section IX.B -- energy accounting.

Regenerates the static-energy saving (Dual Direct vs 4K+2M) and the
dynamic translation-energy term comparison; asserts the paper's
direction: the new design's walker-activity reduction (term c)
dominates the small comparator cost it adds to term (b).
"""

import pytest

from repro.experiments import energy


@pytest.fixture(scope="module")
def result(trace_length):
    return energy.run(trace_length=trace_length)


def test_regenerate_energy(benchmark, trace_length):
    out = benchmark.pedantic(
        energy.run,
        kwargs=dict(trace_length=trace_length // 4, workloads=("graph500",)),
        rounds=1,
        iterations=1,
    )
    assert out.rows


class TestPaperShape:
    def test_print(self, result):
        print()
        print(energy.format_energy(result))

    def test_static_saving_in_paper_band(self, result):
        # Paper: Dual Direct reduces execution time by 11-89% vs 4K+2M
        # across benchmarks; static energy follows suit.
        savings = [r.static_saving_dd_vs_4k2m for r in result.rows]
        assert max(savings) > 0.10
        for saving in savings:
            assert 0.0 <= saving <= 0.95

    def test_dd_reduces_dynamic_translation_energy(self, result):
        for row in result.rows:
            assert row.dd_dynamic.total < row.base_dynamic.total

    def test_walker_term_dominates_the_saving(self, result):
        for row in result.rows:
            walker_saving = (
                row.base_dynamic.walker_energy - row.dd_dynamic.walker_energy
            )
            comparator_cost = row.dd_dynamic.l2_energy - min(
                row.dd_dynamic.l2_energy, row.base_dynamic.l2_energy
            )
            assert walker_saving > comparator_cost

    def test_l1_term_unchanged(self, result):
        # The new design leaves the L1 TLB access path untouched.
        for row in result.rows:
            assert row.dd_dynamic.l1_energy == pytest.approx(
                row.base_dynamic.l1_energy, rel=0.01
            )
