"""Bench gate: a warm (100% store-hit) sweep must crush a cold one.

The content-addressed store's whole value proposition is that re-running
a sweep whose cells are already durable costs file reads, not
simulation.  This gate runs the figure11 ``--smoke`` grid cold into a
fresh store, re-runs it warm, asserts byte-identical reports, and gates
warm wall-clock at >= 5x faster than cold (in practice the gap is
orders of magnitude; 5x keeps the gate robust on slow CI disks).

Artifacts land as ``BENCH_store_sweep.json`` when
``REPRO_BENCH_ARTIFACTS_DIR`` is set (CI uploads them for trend
tracking).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import figure11, report
from repro.sched import Sweep
from repro.store import ResultStore

#: The figure11 --smoke grid (see __main__.py: --smoke sets 6000).
SMOKE_TRACE_LENGTH = 6_000

#: Minimum warm-over-cold wall-clock speedup the store must deliver.
MIN_WARM_SPEEDUP = 5.0


@pytest.mark.skip(reason="non-benchmark assertion (un-skipped under --benchmark-only)")
def test_store_warm_sweep_speedup(tmp_path):
    """Warm figure11 smoke sweep: byte-identical and >= 5x faster."""
    store_root = tmp_path / "store"

    cold_store = ResultStore(store_root)
    cold_sweep = Sweep("figure11", cold_store, resume=False)
    start = time.perf_counter()
    cold = figure11.run(trace_length=SMOKE_TRACE_LENGTH, sweep=cold_sweep)
    cold_seconds = time.perf_counter() - start
    assert cold_sweep.report.hits == 0
    assert cold_sweep.report.computed == cold_sweep.report.total > 0

    warm_store = ResultStore(store_root)
    warm_sweep = Sweep("figure11", warm_store, resume=False)
    start = time.perf_counter()
    warm = figure11.run(trace_length=SMOKE_TRACE_LENGTH, sweep=warm_sweep)
    warm_seconds = time.perf_counter() - start
    assert warm_sweep.report.all_hits
    assert warm_sweep.report.computed == 0

    # Byte-identity first: a fast wrong answer is worthless.
    assert report.dumps(warm) == report.dumps(cold)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"\nstore warm-sweep speedup: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s ({speedup:.1f}x)"
    )
    _write_artifact(cold_seconds, warm_seconds, speedup, cold_sweep.report.total)
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s); "
        f"the store gate requires >= {MIN_WARM_SPEEDUP}x"
    )


def _write_artifact(
    cold_seconds: float, warm_seconds: float, speedup: float, cells: int
) -> None:
    directory = os.environ.get("REPRO_BENCH_ARTIFACTS_DIR")
    if not directory:
        return
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "kind": "repro.bench.store_sweep",
        "experiment": "figure11",
        "trace_length": SMOKE_TRACE_LENGTH,
        "cells": cells,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(speedup, 2),
        "min_required_speedup": MIN_WARM_SPEEDUP,
    }
    (out_dir / "BENCH_store_sweep.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
