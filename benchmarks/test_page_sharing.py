"""Benchmark E9: Section IX.E -- content-based page sharing.

Co-schedules two 40 GB big-memory VMs for every workload pair and
measures KSM savings; the paper's finding is that sharing never exceeds
~3%, so the VMM segment's sharing restriction costs little.
"""

import pytest

from repro.experiments import sharing


@pytest.fixture(scope="module")
def result():
    return sharing.run()


def test_regenerate_sharing_study(benchmark):
    out = benchmark.pedantic(
        sharing.run,
        kwargs=dict(workloads=("graph500", "memcached")),
        rounds=1,
        iterations=1,
    )
    assert out.pairs


class TestPaperShape:
    def test_print(self, result):
        print()
        print(sharing.format_study(result))

    def test_savings_never_exceed_paper_bound(self, result):
        # Paper: "page sharing does not save more than 3% of memory".
        assert result.max_savings <= 0.035

    def test_all_pairs_covered(self, result):
        # 4 workloads -> 10 unordered pairs including self-pairs.
        assert len(result.pairs) == 10

    def test_savings_positive_from_os_and_zero_pages(self, result):
        # OS code pages are shared (the paper notes they remain
        # shareable even under our modes, since they stay paged).
        for pair in result.pairs:
            assert pair.result.pages_saved > 0

    def test_identical_workload_pairs_share_most(self, result):
        same = next(
            p for p in result.pairs if p.workload_a == p.workload_b == "graph500"
        )
        cross = next(
            p
            for p in result.pairs
            if {p.workload_a, p.workload_b} == {"graph500", "gups"}
        )
        assert same.result.savings_fraction >= cross.result.savings_fraction
