"""Bench gate: fabric dispatch must not tax warm sweeps.

The fabric's contract is that distribution changes *where* cells run,
never what they cost when no work is needed: a warm sweep dispatched
through a coordinator (every cell already durable in the shared store)
is answered from store probes and batch bookkeeping alone -- no leases,
no workers, no simulation.  This gate runs the figure11 ``--smoke``
grid cold through a coordinator with two lease-driven workers, asserts
the report is byte-identical to the serial run, re-runs it warm through
the same coordinator, and gates warm wall-clock at >= 3x faster than
the distributed cold run (kept below the local store gate's 5x because
the warm fabric path still pays per-wave coordinator round trips).

Artifacts land as ``BENCH_fabric_dispatch.json`` when
``REPRO_BENCH_ARTIFACTS_DIR`` is set.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import figure11, report
from repro.sched import Sweep
from repro.store import ResultStore

#: The figure11 --smoke grid (see __main__.py: --smoke sets 6000).
SMOKE_TRACE_LENGTH = 6_000

#: Minimum warm-over-cold wall-clock speedup through the fabric.
MIN_WARM_SPEEDUP = 3.0

#: Workers pulling leases during the cold run.
WORKERS = 2


@pytest.mark.skip(reason="non-benchmark assertion (un-skipped under --benchmark-only)")
def test_fabric_dispatch_overhead(tmp_path):
    """Fabric figure11 smoke: byte-identical to serial, warm >= 3x cold."""
    from repro.fabric import CoordinatorThread, FabricCoordinator, FabricWorker

    serial_sweep = Sweep("figure11", ResultStore(tmp_path / "serial"))
    serial = figure11.run(trace_length=SMOKE_TRACE_LENGTH, sweep=serial_sweep)

    store = ResultStore(tmp_path / "fabric")
    thread = CoordinatorThread(FabricCoordinator(store=store)).start()
    address = f"127.0.0.1:{thread.port}"
    try:
        for _ in range(WORKERS):
            worker = FabricWorker(address, store, max_cells=2)
            threading.Thread(target=worker.run, daemon=True).start()

        cold_sweep = Sweep("figure11", store, fabric=address)
        start = time.perf_counter()
        cold = figure11.run(trace_length=SMOKE_TRACE_LENGTH, sweep=cold_sweep)
        cold_seconds = time.perf_counter() - start
        assert cold_sweep.report.hits == 0
        assert cold_sweep.report.computed == cold_sweep.report.total > 0
        assert report.dumps(cold) == report.dumps(serial)

        warm_sweep = Sweep("figure11", store, fabric=address)
        start = time.perf_counter()
        warm = figure11.run(trace_length=SMOKE_TRACE_LENGTH, sweep=warm_sweep)
        warm_seconds = time.perf_counter() - start
        assert warm_sweep.report.all_hits
        assert warm_sweep.report.computed == 0
        assert report.dumps(warm) == report.dumps(serial)
    finally:
        thread.stop()

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"\nfabric dispatch: cold {cold_seconds:.2f}s ({WORKERS} workers), "
        f"warm {warm_seconds:.2f}s ({speedup:.1f}x)"
    )
    _write_artifact(cold_seconds, warm_seconds, speedup, cold_sweep.report.total)
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm fabric sweep only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s); "
        f"the fabric gate requires >= {MIN_WARM_SPEEDUP}x"
    )


def _write_artifact(
    cold_seconds: float, warm_seconds: float, speedup: float, cells: int
) -> None:
    directory = os.environ.get("REPRO_BENCH_ARTIFACTS_DIR")
    if not directory:
        return
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "kind": "repro.bench.fabric_dispatch",
        "experiment": "figure11",
        "trace_length": SMOKE_TRACE_LENGTH,
        "cells": cells,
        "workers": WORKERS,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(speedup, 2),
        "min_required_speedup": MIN_WARM_SPEEDUP,
    }
    (out_dir / "BENCH_fabric_dispatch.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
