"""Benchmark E1: Figure 1 -- the introduction's overhead preview.

The opening shot: native 4K vs the virtualized 4K-guest grid vs the two
headline modes (DD and 4K+VD) for graph500, memcached and GUPS.
"""

import pytest

from repro.experiments import figure01


@pytest.fixture(scope="module")
def result(trace_length):
    return figure01.run(trace_length=trace_length)


def test_regenerate_figure1(benchmark, trace_length):
    out = benchmark.pedantic(
        figure01.run,
        kwargs=dict(trace_length=trace_length // 4, workloads=("graph500",)),
        rounds=1,
        iterations=1,
    )
    assert out.grid.results


class TestPaperShape:
    def test_print(self, result):
        print()
        print(figure01.format_figure(result))

    def test_the_motivating_ordering(self, result):
        # For every previewed workload: 4K+4K >> 4K, large VMM pages
        # help, the proposed design mitigates.
        for w in result.grid.workloads:
            native = result.grid.overhead_percent(w, "4K")
            virt = result.grid.overhead_percent(w, "4K+4K")
            with_2m = result.grid.overhead_percent(w, "4K+2M")
            dd = result.grid.overhead_percent(w, "DD")
            vd = result.grid.overhead_percent(w, "4K+VD")
            assert virt > 1.5 * native
            assert native < with_2m < virt
            assert dd < 1.0
            assert vd < native * 1.3 + 2.0
