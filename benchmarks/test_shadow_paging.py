"""Benchmark E8: Section IX.D -- shadow paging vs VMM Direct.

Regenerates the two-category comparison and asserts the paper's
findings: coherence-bound workloads (memcached, GemsFDTD, omnetpp,
canneal) suffer under shadow paging while VMM Direct stays near native
for everything.
"""

import pytest

from repro.experiments import shadow


@pytest.fixture(scope="module")
def result(trace_length):
    return shadow.run(trace_length=trace_length)


def test_regenerate_shadow_comparison(benchmark, trace_length):
    out = benchmark.pedantic(
        shadow.run,
        kwargs=dict(trace_length=trace_length // 4, workloads=("memcached",)),
        rounds=1,
        iterations=1,
    )
    assert out.rows


class TestPaperShape:
    def test_print(self, result):
        print()
        print(shadow.format_comparison(result))

    def test_category_one_membership(self, result):
        # Paper category 1: memcached, GemsFDTD, omnetpp, canneal.
        category1 = {r.workload for r in result.rows if r.shadow_category == 1}
        assert category1 == set(shadow.PAPER_REFERENCE_4K)

    def test_category_one_magnitudes(self, result):
        # Within a few points of the paper's reported slowdowns.
        for row in result.rows:
            paper = shadow.PAPER_REFERENCE_4K.get(row.workload)
            if paper is None:
                continue
            measured = 100 * row.shadow_slowdown_4k
            assert abs(measured - paper) < 0.35 * paper + 2.0, (
                f"{row.workload}: shadow {measured:.1f}% vs paper {paper}%"
            )

    def test_category_two_is_cheap(self, result):
        for row in result.rows:
            if row.shadow_category == 2:
                assert row.shadow_slowdown_4k < 0.05

    def test_2m_pages_reduce_shadow_cost(self, result):
        for row in result.rows:
            assert row.shadow_slowdown_2m < row.shadow_slowdown_4k or (
                row.shadow_slowdown_4k == 0
            )

    def test_vmm_direct_bounded_for_all_workloads(self, result):
        # Paper: shadow up to 29.2% slower; VMM Direct at most 7.3%.
        worst_shadow = max(r.shadow_slowdown_4k for r in result.rows)
        worst_vd = max(r.vmm_direct_slowdown for r in result.rows)
        assert worst_shadow > 0.15
        assert worst_vd < 0.10

    def test_vmm_direct_beats_shadow_for_category_one(self, result):
        for row in result.rows:
            if row.shadow_category == 1:
                assert row.vmm_direct_slowdown < row.shadow_slowdown_4k
