"""Benchmark E2: Figure 11 -- overhead per big-memory workload.

Regenerates the paper's main figure (every native, virtualized and
proposed-mode bar for the big-memory workloads) and asserts the shape
results the paper's text states: overheads grow drastically under
virtualization, large pages help but do not close the gap, and the
proposed modes do.
"""

import pytest

from repro.experiments import figure11
from repro.model.overhead import geometric_mean


@pytest.fixture(scope="module")
def result(trace_length):
    return figure11.run(trace_length=trace_length)


def test_regenerate_figure11(benchmark, trace_length):
    out = benchmark.pedantic(
        figure11.run,
        kwargs=dict(
            trace_length=trace_length // 4,
            workloads=("graph500",),
            configs=("4K", "4K+4K", "DD"),
        ),
        rounds=1,
        iterations=1,
    )
    assert out.grid.results


class TestPaperShape:
    """The observations of Section VIII / IX.A, asserted on our bars."""

    def test_print_figure(self, result):
        print()
        print(figure11.format_figure(result))

    def test_virtualization_multiplies_overhead(self, result):
        # Paper: geometric-mean increase ~3.6x from 4K to 4K+4K.
        ratios = [
            result.grid.overhead_percent(w, "4K+4K")
            / max(result.grid.overhead_percent(w, "4K"), 0.1)
            for w in result.grid.workloads
        ]
        mean = geometric_mean(ratios)
        assert 1.8 < mean < 6.0, f"virt/native geomean {mean:.2f} out of range"

    def test_vmm_pages_reduce_but_dont_eliminate(self, result):
        for w in result.grid.workloads:
            base = result.grid.overhead_percent(w, "4K+4K")
            with_2m = result.grid.overhead_percent(w, "4K+2M")
            native = result.grid.overhead_percent(w, "4K")
            assert with_2m < base
            assert with_2m > native  # still above native (paper obs. 2)

    def test_2m_guest_still_pays_virtualization_tax(self, result):
        for w in result.grid.workloads:
            native_2m = result.grid.overhead_percent(w, "2M")
            virt_2m = result.grid.overhead_percent(w, "2M+2M")
            assert virt_2m >= native_2m

    def test_graph500_matches_paper_text(self, result):
        # Paper: 28% native, 113% virtualized for graph500; we accept
        # the same ordering with |native - 28%| < 10 points.
        native = result.grid.overhead_percent("graph500", "4K")
        virt = result.grid.overhead_percent("graph500", "4K+4K")
        assert abs(native - 28.0) < 10.0
        assert virt > 2.0 * native

    def test_direct_segment_modes_eliminate_overhead(self, result):
        for w in result.grid.workloads:
            assert result.grid.overhead_percent(w, "DS") < 1.0
            assert result.grid.overhead_percent(w, "DD") < 1.0

    def test_vmm_direct_near_native(self, result):
        # Paper: VMM Direct within ~2% of native (geo mean).
        for w in result.grid.workloads:
            native = result.grid.overhead_percent(w, "4K")
            vd = result.grid.overhead_percent(w, "4K+VD")
            assert vd < native * 1.25 + 2.0

    def test_guest_direct_near_native(self, result):
        for w in result.grid.workloads:
            native = result.grid.overhead_percent(w, "4K")
            gd = result.grid.overhead_percent(w, "4K+GD")
            assert gd < native * 1.35 + 2.0

    def test_gups_dwarfs_other_workloads(self, result):
        # GUPS uses the scaled right-hand axis in the paper's figure.
        gups = result.grid.overhead_percent("gups", "4K+4K")
        others = [
            result.grid.overhead_percent(w, "4K+4K")
            for w in result.grid.workloads
            if w != "gups"
        ]
        assert gups > max(others)
