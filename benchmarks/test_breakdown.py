"""Benchmarks E4-E6: the Section IX.A performance breakdown.

Covers three experiments on one run set:

* E4 miss inflation (paper: 1.29-1.62x for workloads with reuse),
* E5 cycles-per-miss growth (paper geo-means: 2.4x / 1.5x / 1.6x for
  4K+4K / 4K+2M / 4K+1G),
* E6 per-miss cost of the new modes (VD within ~13%, GD within ~3% of
  native; DD removing ~99.9% of L2 TLB misses).
"""

import pytest

from repro.experiments import breakdown


@pytest.fixture(scope="module")
def result(trace_length):
    return breakdown.run(trace_length=trace_length)


def test_regenerate_breakdown(benchmark, trace_length):
    out = benchmark.pedantic(
        breakdown.run,
        kwargs=dict(trace_length=trace_length // 4, workloads=("memcached",)),
        rounds=1,
        iterations=1,
    )
    assert out.rows


class TestMissInflation:
    def test_print(self, result):
        print()
        print(breakdown.format_breakdown(result))

    def test_reuse_workloads_inflate(self, result):
        # Paper: 1.29x-1.62x for graph500/memcached/canneal/streamcluster.
        for row in result.rows:
            if row.workload == "gups":
                continue  # saturated at 4K natively; cannot inflate
            assert 1.05 < row.miss_inflation_4k4k < 2.2, (
                f"{row.workload}: inflation {row.miss_inflation_4k4k:.2f}x"
            )

    def test_gups_cannot_inflate(self, result):
        gups = next(r for r in result.rows if r.workload == "gups")
        assert gups.miss_inflation_4k4k == pytest.approx(1.0, abs=0.05)


class TestCyclesPerMiss:
    def test_4k4k_growth_matches_paper_band(self, result):
        # Paper average 2.4x.
        mean = result.mean_cv_over_cn("4K+4K")
        assert 1.8 < mean < 3.2

    def test_large_vmm_pages_shrink_the_growth(self, result):
        assert result.mean_cv_over_cn("4K+2M") < result.mean_cv_over_cn("4K+4K")
        assert result.mean_cv_over_cn("4K+1G") < result.mean_cv_over_cn("4K+4K")

    def test_2m_band(self, result):
        # Paper average 1.5x for 4K+2M.
        assert 1.0 < result.mean_cv_over_cn("4K+2M") < 2.2


class TestModePerMissCosts:
    def test_vmm_direct_within_band(self, result):
        # Paper: ~13% above native per miss.
        for row in result.rows:
            assert -0.05 < row.vd_per_miss_vs_native < 0.30

    def test_guest_direct_cheaper_than_vmm_direct(self, result):
        for row in result.rows:
            assert row.gd_per_miss_vs_native <= row.vd_per_miss_vs_native + 0.02

    def test_guest_direct_within_band(self, result):
        # Paper: ~3% above native per miss.
        for row in result.rows:
            assert -0.05 < row.gd_per_miss_vs_native < 0.15

    def test_dd_removes_l2_misses(self, result):
        # Paper: ~99.9% reduction in L2 TLB misses.
        for row in result.rows:
            assert row.dd_l2_miss_reduction > 0.99
