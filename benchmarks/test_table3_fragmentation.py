"""Benchmark T3: Table III -- mode policy under fragmentation.

Executes all six (workload class x fragmentation state) scenarios on
live data structures and asserts the prescribed mode transitions.
"""

import pytest

from repro.core.modes import TranslationMode
from repro.experiments import table3_fragmentation
from repro.vmm.policy import WorkloadClass


@pytest.fixture(scope="module")
def result():
    return table3_fragmentation.run()


def test_regenerate_table3(benchmark, result):
    # Timing re-runs one representative scenario (the cheapest).
    from repro.vmm.policy import FragmentationState

    out = benchmark.pedantic(
        table3_fragmentation._run_scenario,
        args=(WorkloadClass.COMPUTE, FragmentationState(guest_fragmented=True)),
        rounds=1,
        iterations=1,
    )
    assert out.reached_final_mode


class TestTable3Rows:
    def test_print(self, result):
        print()
        print(table3_fragmentation.format_scenarios(result))

    def test_all_scenarios_converge(self, result):
        for outcome in result.outcomes:
            assert outcome.reached_final_mode, (
                f"{outcome.workload_class.value} "
                f"host={outcome.state.host_fragmented} "
                f"guest={outcome.state.guest_fragmented} stuck in "
                f"{outcome.final_mode.value}"
            )

    def test_big_memory_rows_end_in_dual_direct(self, result):
        for outcome in result.outcomes:
            if outcome.workload_class is WorkloadClass.BIG_MEMORY:
                assert outcome.final_mode is TranslationMode.DUAL_DIRECT

    def test_compute_rows_end_in_vmm_direct(self, result):
        for outcome in result.outcomes:
            if outcome.workload_class is WorkloadClass.COMPUTE:
                assert outcome.final_mode is TranslationMode.VMM_DIRECT

    def test_host_fragmented_rows_needed_compaction(self, result):
        for outcome in result.outcomes:
            if outcome.state.host_fragmented:
                assert outcome.compaction_pages_moved > 0
            else:
                assert outcome.compaction_pages_moved == 0

    def test_guest_fragmented_big_memory_used_self_ballooning(self, result):
        for outcome in result.outcomes:
            expect = (
                outcome.workload_class is WorkloadClass.BIG_MEMORY
                and outcome.state.guest_fragmented
            )
            assert outcome.used_self_ballooning == expect

    def test_degraded_initial_modes_match_table(self, result):
        for outcome in result.outcomes:
            if not outcome.state.host_fragmented:
                continue
            if outcome.workload_class is WorkloadClass.BIG_MEMORY:
                assert outcome.initial_mode is TranslationMode.GUEST_DIRECT
            else:
                assert outcome.initial_mode is TranslationMode.BASE_VIRTUALIZED
