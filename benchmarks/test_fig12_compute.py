"""Benchmark E3: Figure 12 -- overhead per compute workload.

SPEC/PARSEC workloads under native THP, the virtualized page-size grid
and VMM Direct (the mode for unmodified guests).  Asserts the paper's
compute-side observations: similar trends to big-memory, cactusADM and
mcf expensive even with THP, VMM Direct near native.
"""

import pytest

from repro.experiments import figure12


@pytest.fixture(scope="module")
def result(trace_length):
    return figure12.run(trace_length=trace_length)


def test_regenerate_figure12(benchmark, trace_length):
    out = benchmark.pedantic(
        figure12.run,
        kwargs=dict(
            trace_length=trace_length // 4,
            workloads=("omnetpp",),
            configs=("4K", "4K+4K", "4K+VD"),
        ),
        rounds=1,
        iterations=1,
    )
    assert out.grid.results


class TestPaperShape:
    def test_print_figure(self, result):
        print()
        print(figure12.format_figure(result))

    def test_virtualization_hurts_compute_too(self, result):
        for w in result.grid.workloads:
            assert result.grid.overhead_percent(w, "4K+4K") > 1.5 * max(
                result.grid.overhead_percent(w, "4K"), 0.05
            )

    def test_thp_helps_most_workloads(self, result):
        helped = sum(
            1
            for w in result.grid.workloads
            if result.grid.overhead_percent(w, "THP")
            < result.grid.overhead_percent(w, "4K")
        )
        assert helped >= len(result.grid.workloads) - 1

    def test_cactus_and_mcf_expensive_despite_thp(self, result):
        # Paper observation 4: cactusADM and mcf have high overheads
        # even with transparent huge pages.
        for w in ("cactusadm", "mcf"):
            assert result.grid.overhead_percent(w, "THP") > 5.0

    def test_vmm_direct_near_native_for_all(self, result):
        for w in result.grid.workloads:
            native = result.grid.overhead_percent(w, "4K")
            vd = result.grid.overhead_percent(w, "4K+VD")
            assert vd < native * 1.3 + 2.0

    def test_thp_plus_vd_is_best_virtualized_option(self, result):
        # Up to one absolute point of slack: THP's occasional 4K
        # fallbacks can lose to an explicit 2M+2M configuration when
        # the latter is already near zero (streamcluster's hot centers
        # fit the 2M TLB outright).
        for w in result.grid.workloads:
            best_baseline = min(
                result.grid.overhead_percent(w, cfg)
                for cfg in ("4K+4K", "4K+2M", "2M+2M")
            )
            assert (
                result.grid.overhead_percent(w, "THP+VD")
                <= best_baseline * 1.1 + 1.0
            )
