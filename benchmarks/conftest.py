"""Benchmark configuration.

Benchmarks regenerate the paper's tables and figures (scaled traces) and
print the same rows/series the paper reports.  pytest-benchmark times
each regeneration; the printed artifacts are the deliverable, and
paper-shape assertions guard against regressions that break the
reproduction.

Run with:  pytest benchmarks/ --benchmark-only
"""

import pytest

#: Trace length for benchmark runs: long enough for the paper-shape
#: assertions to hold with margin, short enough for the full suite to
#: finish in minutes.
BENCH_TRACE_LENGTH = 40_000


@pytest.fixture(scope="session")
def trace_length() -> int:
    return BENCH_TRACE_LENGTH


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(config, items):
    """Keep the paper-shape assertions alive under ``--benchmark-only``.

    pytest-benchmark skips tests without the ``benchmark`` fixture when
    ``--benchmark-only`` is given; in this directory those tests *are*
    the benchmark artifacts (they print the regenerated tables and
    assert the paper's shape on the shared run), so un-skip them.
    """
    if not config.getoption("--benchmark-only", False):
        return
    for item in items:
        item.own_markers = [
            marker
            for marker in item.own_markers
            if not (
                marker.name == "skip"
                and "non-benchmark" in str(marker.kwargs.get("reason", ""))
            )
        ]
