"""Benchmark T4: Table IV -- linear models vs direct simulation.

Applies the paper's exact prediction methodology (Section VII) and
cross-checks it against direct simulation of the segment hardware.
"""

import pytest

from repro.experiments import table4_models


@pytest.fixture(scope="module")
def result(trace_length):
    return table4_models.run(trace_length=trace_length)


def test_regenerate_table4(benchmark, trace_length):
    out = benchmark.pedantic(
        table4_models.run,
        kwargs=dict(trace_length=trace_length // 4, workloads=("graph500",)),
        rounds=1,
        iterations=1,
    )
    assert out.comparisons


class TestModelAgreement:
    def test_print(self, result):
        print()
        print(table4_models.format_comparison(result))

    def test_models_and_simulation_agree_on_magnitude(self, result):
        for comparison in result.comparisons:
            if comparison.design in ("Dual Direct", "Direct Segment"):
                # Both predict ~zero; compare on absolute cycles
                # relative to the workload's walk budget instead.
                continue
            assert comparison.relative_error < 0.45, (
                f"{comparison.workload}/{comparison.design}: model "
                f"{comparison.predicted_cycles:.0f} vs sim "
                f"{comparison.simulated_cycles:.0f}"
            )

    def test_eliminating_designs_predicted_near_zero(self, result):
        for comparison in result.comparisons:
            if comparison.design not in ("Dual Direct", "Direct Segment"):
                continue
            base = max(
                c.simulated_cycles
                for c in result.comparisons
                if c.workload == comparison.workload
            )
            assert comparison.predicted_cycles < 0.05 * base
            assert comparison.simulated_cycles < 0.05 * base

    def test_model_ordering_matches_simulation_ordering(self, result):
        # Within each workload, the model must rank designs the same
        # way direct simulation does -- up to near-ties (DD and DS both
        # predict ~zero; GD and VD differ by a few cycles per miss).
        by_workload = {}
        for c in result.comparisons:
            by_workload.setdefault(c.workload, []).append(c)
        for workload, comparisons in by_workload.items():
            for a in comparisons:
                for b in comparisons:
                    # A strong model preference (a at most half of b)
                    # must never be contradicted strongly by simulation.
                    if a.predicted_cycles < 0.5 * b.predicted_cycles:
                        assert a.simulated_cycles < 1.5 * b.simulated_cycles, (
                            f"{workload}: model prefers {a.design} over "
                            f"{b.design} but simulation strongly disagrees"
                        )
