"""Ablation benches: sensitivity of the design choices (DESIGN.md).

Four sweeps around the paper's design points: escape-filter geometry,
nested-TLB placement, base-bound check cost, and page-walk-cache size.
"""

import pytest

from repro.experiments import ablations


class TestFilterGeometry:
    @pytest.fixture(scope="class")
    def points(self):
        return ablations.sweep_filter_geometry()

    def test_regenerate(self, benchmark):
        out = benchmark.pedantic(
            ablations.sweep_filter_geometry,
            kwargs=dict(bits_options=(256,), probe_pages=50_000),
            rounds=1,
            iterations=1,
        )
        assert out

    def test_print(self, points):
        print()
        print(ablations.format_filter_geometry(points))

    def test_fp_rate_falls_with_size(self, points):
        rates = [p.false_positive_rate for p in points]
        assert rates == sorted(rates, reverse=True)

    def test_papers_256_bit_choice_is_sufficient(self, points):
        chosen = next(p for p in points if p.total_bits == 256)
        # ~0.24% analytically; anything below 1% makes escaped-page
        # traffic negligible (Figure 13's conclusion).
        assert chosen.false_positive_rate < 0.01

    def test_64_bits_would_not_suffice(self, points):
        small = next(p for p in points if p.total_bits == 64)
        assert small.false_positive_rate > 10 * next(
            p for p in points if p.total_bits == 256
        ).false_positive_rate


class TestNestedTlbPlacement:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.sweep_nested_tlb(trace_length=30_000)

    def test_regenerate(self, benchmark):
        out = benchmark.pedantic(
            ablations.sweep_nested_tlb,
            kwargs=dict(workloads=("memcached",), trace_length=10_000),
            rounds=1,
            iterations=1,
        )
        assert out

    def test_print(self, rows):
        print()
        print(ablations.format_nested_tlb(rows))

    def test_sharing_causes_the_inflation(self, rows):
        # With a dedicated nested TLB the inflation largely disappears:
        # direct evidence for Section IX.A's capacity-pressure diagnosis.
        for row in rows:
            assert row.shared_inflation > 1.1
            assert row.dedicated_inflation < row.shared_inflation
            assert row.dedicated_inflation < 1.0 + 0.6 * (row.shared_inflation - 1.0)


class TestCheckCost:
    @pytest.fixture(scope="class")
    def points(self):
        return ablations.sweep_check_cost()

    def test_regenerate(self, benchmark):
        out = benchmark.pedantic(
            ablations.sweep_check_cost,
            kwargs=dict(check_cycles_options=(1,), trace_length=10_000),
            rounds=1,
            iterations=1,
        )
        assert out

    def test_print(self, points):
        print()
        print(ablations.format_check_cost(points))

    def test_overhead_monotone_in_check_cost(self, points):
        overheads = [p.vd_overhead_percent for p in points]
        assert overheads == sorted(overheads)

    def test_vd_survives_pessimistic_delta(self, points):
        # Even at 10 cycles per check VMM Direct beats the 2D walk.
        pessimistic = next(p for p in points if p.check_cycles == 10)
        assert pessimistic.vd_overhead_percent < pessimistic.base_overhead_percent


class TestPwcSize:
    @pytest.fixture(scope="class")
    def points(self):
        return ablations.sweep_pwc_size()

    def test_regenerate(self, benchmark):
        out = benchmark.pedantic(
            ablations.sweep_pwc_size,
            kwargs=dict(entries_options=(32,), trace_length=10_000),
            rounds=1,
            iterations=1,
        )
        assert out

    def test_print(self, points):
        print()
        print(ablations.format_pwc_size(points))

    def test_bigger_pwc_cheaper_walks(self, points):
        cv = [p.cycles_per_walk for p in points]
        assert cv[0] > cv[-1]
