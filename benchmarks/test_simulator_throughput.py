"""Simulator throughput benchmarks (the library's own performance).

Unlike the figure benches (which time one-shot regenerations), these
measure the hot paths downstream users care about: MMU accesses per
second in the cheap (TLB-hit) and expensive (2D-walk) regimes, and
trace generation speed.
"""

import numpy as np
import pytest

from repro.sim.config import parse_config
from repro.sim.system import build_system, populate_for_addresses
from repro.workloads.registry import create_workload
from tests.conftest import TinyWorkload


@pytest.fixture(scope="module")
def hit_system():
    system = build_system(parse_config("4K+4K"), TinyWorkload().spec)
    base = system.base_va
    populate_for_addresses(system, [base])
    system.mmu.access(base)  # warm
    return system


@pytest.fixture(scope="module")
def miss_system():
    workload = TinyWorkload()
    system = build_system(parse_config("4K+4K"), workload.spec)
    trace = workload.trace(4000, seed=0)
    addresses = sorted({(int(p) << 12) + system.base_va for p in trace})
    populate_for_addresses(system, addresses)
    return system, addresses


def test_l1_hit_rate(benchmark, hit_system):
    va = hit_system.base_va
    access = hit_system.mmu.access

    def hot_loop():
        for _ in range(1000):
            access(va)

    benchmark(hot_loop)


def test_2d_walk_rate(benchmark, miss_system):
    system, addresses = miss_system
    access = system.mmu.access
    flush = system.mmu.flush_tlbs
    sample = addresses[:500]

    def walk_loop():
        flush()  # every access below misses everything
        for va in sample:
            access(va)

    benchmark(walk_loop)


def test_trace_generation_rate(benchmark):
    workload = create_workload("graph500")
    trace = benchmark(workload.trace, 50_000, 1)
    assert isinstance(trace, np.ndarray)
    assert len(trace) == 50_000
