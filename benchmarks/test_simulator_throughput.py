"""Simulator throughput benchmarks (the library's own performance).

Unlike the figure benches (which time one-shot regenerations), these
measure the hot paths downstream users care about: MMU accesses per
second in the cheap (TLB-hit) and expensive (2D-walk) regimes -- scalar
and batched -- and trace generation speed.  The baseline-regression
test at the bottom gates the committed ``BENCH_simulator.json``.
"""

import os

import numpy as np
import pytest

from repro.experiments import bench
from repro.sim.config import parse_config
from repro.sim.system import build_system, populate_for_addresses
from repro.workloads.registry import create_workload
from tests.conftest import TinyWorkload


@pytest.fixture(scope="module")
def hit_system():
    system = build_system(parse_config("4K+4K"), TinyWorkload().spec)
    base = system.base_va
    populate_for_addresses(system, [base])
    system.mmu.access(base)  # warm
    return system


@pytest.fixture(scope="module")
def miss_system():
    workload = TinyWorkload()
    system = build_system(parse_config("4K+4K"), workload.spec)
    trace = workload.trace(4000, seed=0)
    addresses = sorted({(int(p) << 12) + system.base_va for p in trace})
    populate_for_addresses(system, addresses)
    return system, addresses


def test_l1_hit_rate(benchmark, hit_system):
    va = hit_system.base_va
    access = hit_system.mmu.access

    def hot_loop():
        for _ in range(1000):
            access(va)

    benchmark(hot_loop)


def test_2d_walk_rate(benchmark, miss_system):
    system, addresses = miss_system
    access = system.mmu.access
    flush = system.mmu.flush_tlbs
    sample = addresses[:500]

    def walk_loop():
        flush()  # every access below misses everything
        for va in sample:
            access(va)

    benchmark(walk_loop)


def test_trace_generation_rate(benchmark):
    workload = create_workload("graph500")
    trace = benchmark(workload.trace, 50_000, 1)
    assert isinstance(trace, np.ndarray)
    assert len(trace) == 50_000


def test_batched_engine_rate(benchmark):
    """Batched fast path on a resident hot set (the engine's best case)."""
    system = build_system(parse_config("4K+4K"), TinyWorkload().spec)
    pages = np.arange(32, dtype=np.int64)
    addresses = (np.tile(pages, 2000) << 12) + system.base_va
    populate_for_addresses(system, np.unique(addresses).tolist())
    system.mmu.access_batch(addresses[:64])  # everything resident

    benchmark(system.mmu.access_batch, addresses)


@pytest.mark.skip(reason="non-benchmark assertion (un-skipped under --benchmark-only)")
def test_bench_baseline_regression():
    """Fail when throughput regresses >30% against the committed baseline.

    Gates the machine-independent ratio (``batched_speedup``) plus a
    within-run sanity floor; absolute refs/sec are machine-dependent and
    only reported.  ``REPRO_BENCH_UPDATE=1`` refreshes the baseline
    instead of asserting.
    """
    result = bench.run(trace_length=20_000, jobs=1)
    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        path = bench.write_baseline(result)
        pytest.skip(f"baseline refreshed at {path}")
    print()
    print(bench.format_bench(result))
    baseline = result.baseline
    assert baseline, f"missing committed baseline at {bench.BASELINE_PATH}"
    measured = result.metrics["batched_speedup"]
    committed = baseline["batched_speedup"]
    assert measured >= 0.70 * committed, (
        f"batched/scalar speedup regressed >30%: measured {measured:.1f}x "
        f"vs committed {committed:.1f}x"
    )
    # The batched engine must never lose to the scalar loop on its own
    # best-case stream, whatever the machine.
    assert measured >= 1.0
    # The observability hooks' no-op-when-disabled contract: attaching a
    # disabled MetricsRegistry must cost <2% on the hit-dominated
    # stream.  Within-run ratio, so no baseline entry is needed.
    obs_ratio = result.metrics["obs_disabled_ratio"]
    assert obs_ratio >= 0.98, (
        f"disabled-metrics hooks cost {100 * (1 - obs_ratio):.1f}% "
        f"(>2%) on the hit-dominated stream"
    )
