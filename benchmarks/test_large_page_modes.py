"""Beyond-paper bench: VMM/Guest Direct enhanced with large guest pages.

Section IX.A notes "the performance benefits of VMM Direct are further
enhanced by using 2MB (bar 2M+VD) or 1GB pages (bar 1G+VD) ... We do
not evaluate these due to lack of support for large pages in our
prototype."  Our simulator has no such limitation, so this bench runs
the enhancement the authors could not: VMM Direct and Guest Direct
under 2M and 1G guest pages.
"""

import pytest

from repro.core.address import PageSize
from repro.core.modes import TranslationMode
from repro.experiments.common import format_table
from repro.sim.config import SystemConfig
from repro.sim.simulator import run_trace, simulate
from repro.sim.system import build_system
from repro.workloads.registry import create_workload

CONFIGS = ("4K", "2M", "4K+VD", "2M+VD", "1G+VD", "4K+GD", "GD/2M-nested")
WORKLOADS = ("graph500", "memcached")

#: Guest Direct over 2 MB *nested* pages: the segment still flattens the
#: first dimension; the nested walk for the final gPA shrinks to 3 refs.
GD_2M_NESTED = SystemConfig(
    label="GD/2M-nested",
    mode=TranslationMode.GUEST_DIRECT,
    guest_page=PageSize.SIZE_4K,
    nested_page=PageSize.SIZE_2M,
)


def _simulate(config_label, workload, trace_length):
    if config_label == "GD/2M-nested":
        system = build_system(GD_2M_NESTED, workload.spec)
        trace = workload.trace(trace_length, seed=0)
        return run_trace(
            system,
            trace,
            workload.spec.ideal_cycles_per_ref,
            refs_per_entry=workload.spec.refs_per_entry,
        )
    return simulate(config_label, workload, trace_length=trace_length)


@pytest.fixture(scope="module")
def results(trace_length):
    out = {}
    for name in WORKLOADS:
        for config in CONFIGS:
            out[(name, config)] = _simulate(
                config, create_workload(name), trace_length
            )
    return out


def test_regenerate_large_page_modes(benchmark, trace_length):
    out = benchmark.pedantic(
        simulate,
        args=("2M+VD", create_workload("graph500")),
        kwargs=dict(trace_length=trace_length // 4),
        rounds=1,
        iterations=1,
    )
    assert out.run.walks >= 0


class TestEnhancedModes:
    def test_print(self, results):
        print()
        rows = [
            [config]
            + [f"{results[(w, config)].overhead_percent:.2f}%" for w in WORKLOADS]
            for config in CONFIGS
        ]
        print(
            format_table(
                ["config", *WORKLOADS],
                rows,
                title="VMM/Guest Direct enhanced with large guest pages "
                "(the evaluation the paper's prototype could not run)",
            )
        )

    def test_2m_vd_beats_4k_vd(self, results):
        for w in WORKLOADS:
            assert (
                results[(w, "2M+VD")].overhead_percent
                < results[(w, "4K+VD")].overhead_percent
            )

    def test_2m_vd_tracks_native_2m(self, results):
        # With the nested dimension flattened, 2M+VD should land near
        # native 2M (the same relationship 4K+VD has to native 4K).
        for w in WORKLOADS:
            native = results[(w, "2M")].overhead_percent
            enhanced = results[(w, "2M+VD")].overhead_percent
            assert enhanced < native * 1.6 + 2.0

    def test_1g_vd_is_near_zero(self, results):
        for w in WORKLOADS:
            assert results[(w, "1G+VD")].overhead_percent < 3.0

    def test_guest_direct_also_benefits(self, results):
        # Larger nested pages shrink Guest Direct's residual 1D walk.
        for w in WORKLOADS:
            assert (
                results[(w, "GD/2M-nested")].overhead_percent
                < results[(w, "4K+GD")].overhead_percent
            )
